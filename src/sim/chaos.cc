/// \file
/// Chaos harness implementation.

#include "sim/chaos.h"

#include <algorithm>
#include <map>
#include <optional>

#include "apps/httpd.h"
#include "apps/mysql.h"
#include "apps/strategy.h"
#include "kernel/asid.h"
#include "sim/rng.h"
#include "telemetry/metrics.h"
#include "telemetry/postmortem.h"
#include "vdom/introspect.h"
#include "vdom/recovery.h"
#include "vdom/sandbox.h"
#include "vdom/secure_alloc.h"

namespace vdom::sim {

namespace {

/// The graceful-degradation statuses an armed run is allowed to surface.
bool
is_fault_status(VdomStatus st)
{
    return st == VdomStatus::kTransientFault ||
           st == VdomStatus::kRetriesExhausted ||
           st == VdomStatus::kResourceExhausted;
}

/// The DESIGN.md structural invariants both harnesses enforce after every
/// op: each VDS domain map internally consistent (invariant 3), reserved
/// pdoms and the API vdom never mapped (invariant 7), freed vdoms gone
/// from every map.  Returns the first breach, empty when all hold;
/// \p checks counts one check per VDS examined.
std::string
check_design_invariants(kernel::Process &proc, const hw::ArchParams &params,
                        std::uint64_t *checks)
{
    const kernel::MmStruct &mm = proc.mm();
    for (const auto &vds : mm.vdses()) {
        if (checks)
            ++*checks;
        if (!vds->check_consistency())
            return "vds " + std::to_string(vds->id()) +
                   " domain map inconsistent";
        for (auto [pdom, vdomid] : vds->mapped_pairs()) {
            if (pdom < params.num_reserved_pdoms || vdomid == kApiVdom)
                return "reserved domain mapped";
            if (!mm.vdm().is_allocated(vdomid))
                return "freed vdom " + std::to_string(vdomid) +
                       " still mapped";
        }
    }
    return {};
}

/// Sites worth replaying in sticky mode.  The two pure-delay sites are
/// exempt: kPteWriteDelay only adds latency, and a sticky kTlbEntryDrop
/// would drop every re-filled entry — unbounded re-walks with no new
/// architectural outcome.
bool
sticky_swept(FaultSite site)
{
    return site != FaultSite::kTlbEntryDrop &&
           site != FaultSite::kPteWriteDelay;
}

}  // namespace

ChaosHarness::ChaosHarness(const ChaosConfig &config)
    : config_(config),
      params_(config.arch == hw::ArchKind::kX86
                  ? hw::ArchParams::x86(config.cores)
                  : hw::ArchParams::arm(config.cores)),
      machine_(std::make_unique<hw::Machine>(params_)),
      proc_(std::make_unique<kernel::Process>(*machine_)),
      sys_(std::make_unique<VdomSystem>(*proc_)),
      plan_(config.seed),
      flight_(config.cores, config.flight_per_core)
{
    for (const auto &[site, spec] : config_.faults)
        plan_.arm(site, spec);
    // World bring-up runs fault-free (the plan is attached only inside
    // run()): chaos targets steady-state behaviour, not construction.
    sys_->vdom_init(machine_->core(0));
    for (std::size_t t = 0; t < config_.threads; ++t) {
        std::size_t core_id = t % config_.cores;
        kernel::Task *task = proc_->create_task();
        proc_->switch_to(machine_->core(core_id), *task, false);
        sys_->vdr_alloc(machine_->core(core_id), *task, 1 + t % 3);
        tasks_.push_back(task);
    }
    for (std::size_t d = 0; d < config_.domains; ++d)
        make_domain(1 + d % 3, d % 5 == 0, 0, nullptr);
}

ChaosHarness::~ChaosHarness() = default;

bool
ChaosHarness::make_domain(std::uint64_t pages, bool frequent,
                          std::size_t core_id, VdomStatus *status)
{
    hw::Core &core = machine_->core(core_id);
    VdomId vdom = sys_->vdom_alloc(core, frequent);
    if (vdom == kInvalidVdom)
        return false;
    hw::Vpn vpn = proc_->mm().mmap(pages);
    VdomStatus st = sys_->vdom_mprotect(core, vpn, pages, vdom);
    if (status)
        *status = st;
    if (st != VdomStatus::kOk) {
        sys_->vdom_free(core, vdom);
        return false;
    }
    doms_.emplace_back(vdom, vpn);
    return true;
}

ChaosResult
ChaosHarness::run()
{
    ChaosResult result;
    Rng rng(config_.seed + 0x9e3779b97f4a7c15ULL);
    ScopedFaults armed(plan_);
    // The flight recorder rides along for the whole churn (it observes,
    // never charges), so a violation bundle carries the causal timeline
    // that led to it.  A zero budget disables the recorder entirely.
    std::optional<telemetry::ScopedFlightRecorder> recording;
    if (config_.flight_per_core > 0)
        recording.emplace(flight_);

    for (int op = 0; op < config_.ops; ++op) {
        std::size_t ti = rng.below(tasks_.size());
        std::size_t core_id = ti % config_.cores;
        kernel::Task &task = *tasks_[ti];
        hw::Core &core = machine_->core(core_id);
        // Keep the acting thread installed on its core (the switch runs
        // the ASID path, where kAsidExhaustion fires).
        proc_->switch_to(core, task, false);

        switch (rng.below(8)) {
          case 0:
          case 1:
          case 2: {
            // Weighted toward grants: mapping pressure is what drives the
            // interesting paths (eviction, VDS allocation, migration).
            static constexpr VPerm kPerms[4] = {VPerm::kFullAccess,
                                                VPerm::kFullAccess,
                                                VPerm::kAccessDisable,
                                                VPerm::kPinned};
            VPerm perm = kPerms[rng.below(4)];
            VdomId vdom = doms_[rng.below(doms_.size())].first;
            VdomStatus st = sys_->wrvdr(core, task, vdom, perm);
            if (is_fault_status(st)) {
                ++result.transient_failures;
            } else if (st != VdomStatus::kOk &&
                       st != VdomStatus::kNoVdr) {
                record_violation(result, op,
                                 std::string("unexpected wrvdr status ") +
                                     status_name(st));
            }
            break;
          }
          case 3:
          case 4:
          case 5: {
            auto [vdom, vpn] = doms_[rng.below(doms_.size())];
            bool write = rng.below(2) != 0;
            const Vdr *vdr = task.vdr();
            VPerm held = vdr ? vdr->get(vdom) : VPerm::kAccessDisable;
            VAccess res = sys_->access(core, task, vpn, write);
            // DESIGN.md invariant 1: outcome == VDR policy, always —
            // injected faults may slow an access down, never change its
            // verdict.
            bool allowed = write ? held == VPerm::kFullAccess
                                 : vperm_active(held);
            if (res.ok != allowed) {
                record_violation(
                    result, op,
                    "access outcome diverged from VDR policy (vdom " +
                        std::to_string(vdom) + ", held " +
                        vperm_name(held) + ")");
            }
            if (res.ok)
                ++result.ok_accesses;
            else
                ++result.denied_accesses;
            // Touch the page again: a successful first access filled the
            // TLB, so this one exercises the hit path (where
            // kTlbEntryDrop lives) and must reach the same verdict.
            VAccess again = sys_->access(core, task, vpn, write);
            if (again.ok != res.ok) {
                record_violation(result, op,
                                 "repeated access changed verdict (vdom " +
                                     std::to_string(vdom) + ")");
            }
            break;
          }
          case 6: {
            if (doms_.size() < 2 * config_.domains) {
                VdomStatus st = VdomStatus::kOk;
                if (!make_domain(1 + rng.below(3), rng.below(5) == 0,
                                 core_id, &st)) {
                    if (is_fault_status(st)) {
                        ++result.transient_failures;
                    } else {
                        record_violation(
                            result, op,
                            std::string("unexpected mprotect status ") +
                                status_name(st));
                    }
                }
            } else if (doms_.size() > 4) {
                std::size_t di = rng.below(doms_.size());
                VdomStatus st =
                    sys_->vdom_free(core, doms_[di].first);
                if (st != VdomStatus::kOk) {
                    record_violation(
                        result, op,
                        std::string("unexpected vdom_free status ") +
                            status_name(st));
                }
                doms_.erase(doms_.begin() +
                            static_cast<std::ptrdiff_t>(di));
            }
            break;
          }
          case 7: {
            if (doms_.size() > 4 && rng.below(2) == 0) {
                std::size_t di = rng.below(doms_.size());
                VdomStatus st =
                    sys_->vdom_free(core, doms_[di].first);
                if (st != VdomStatus::kOk) {
                    record_violation(
                        result, op,
                        std::string("unexpected vdom_free status ") +
                            status_name(st));
                }
                doms_.erase(doms_.begin() +
                            static_cast<std::ptrdiff_t>(di));
            } else if (!task.has_vdr()) {
                VdomStatus st =
                    sys_->vdr_alloc(core, task, 1 + ti % 3);
                if (is_fault_status(st))
                    ++result.transient_failures;
            } else if (rng.below(4) == 0) {
                sys_->vdr_free(core, task);
            }
            break;
          }
        }
        ++result.ops;
        check_invariants(result, op);
    }

    result.faults_injected = plan_.total_fires();
    for (std::size_t s = 0; s < kNumFaultSites; ++s) {
        auto site = static_cast<FaultSite>(s);
        result.occurrences_by_site[s] = plan_.occurrences(site);
        result.fires_by_site[s] = plan_.fires(site);
    }
    result.breakdown = machine_->total_breakdown();
    for (std::size_t c = 0; c < machine_->num_cores(); ++c)
        result.max_clock = std::max(result.max_clock,
                                    machine_->core(c).now());
    result.flight_records = flight_.total();
    result.flows = flight_.last_flow();
    return result;
}

bool
ChaosHarness::export_postmortem(const std::string &path,
                                const std::string &reason, int op) const
{
    telemetry::PostmortemInfo info;
    info.reason = reason;
    info.context.emplace_back("arch", hw::arch_name(config_.arch));
    info.context.emplace_back("seed", std::to_string(config_.seed));
    info.context.emplace_back("cores", std::to_string(config_.cores));
    info.context.emplace_back("ops", std::to_string(config_.ops));
    if (op >= 0)
        info.context.emplace_back("op", std::to_string(op));
    info.flight = &flight_;
    info.metrics = telemetry::metrics_sink();
    info.plan = &plan_;
    info.system = sys_.get();
    return telemetry::export_postmortem(path, info);
}

void
ChaosHarness::check_invariants(ChaosResult &result, int op)
{
    std::string bad = check_design_invariants(*proc_, params_,
                                              &result.invariant_checks);
    if (!bad.empty())
        record_violation(result, op, bad);
}

void
ChaosHarness::record_violation(ChaosResult &result, int op,
                               const std::string &what)
{
    ++result.violations;
    if (result.first_violation.empty()) {
        result.first_violation = "op " + std::to_string(op) + " (seed " +
                                 std::to_string(config_.seed) + ", " +
                                 hw::arch_name(config_.arch) + "): " + what;
        // First violation wins the bundle: the flight ring still holds the
        // records leading up to it, and later violations are usually
        // knock-on effects of the same root cause.
        if (!config_.postmortem_path.empty()) {
            result.postmortem_written = export_postmortem(
                config_.postmortem_path,
                "invariant violation: " + what, op);
        }
    }
}

// --- SweepHarness --------------------------------------------------------

/// One scripted public-API operation.  Domain/region fields index the
/// World's append-only `doms`/`regions` vectors, which replay identically
/// in every fresh world.
struct SweepHarness::Op {
    enum class Kind : std::uint8_t {
        kInit,      ///< vdom_init
        kVdrAlloc,  ///< vdr_alloc(nas = pages)
        kVdrFree,   ///< vdr_free
        kMmap,      ///< mm.mmap(pages) — appends a region
        kAlloc,     ///< vdom_alloc(frequent) — appends a dom
        kMprotect,  ///< vdom_mprotect(regions[region], doms[dom])
        kWrvdr,     ///< wrvdr(doms[dom], perm)
        kAccess,    ///< access(regions[region], write) + verdict oracle
        kFreeDom,   ///< vdom_free(doms[dom])
    };

    Kind kind = Kind::kInit;
    std::size_t task = 0;    ///< Acting thread (thread-scoped ops).
    std::size_t dom = 0;     ///< Index into World::doms.
    std::size_t region = 0;  ///< Index into World::regions.
    std::uint64_t pages = 0; ///< kMmap page count / kVdrAlloc nas budget.
    VPerm perm = VPerm::kFullAccess;
    bool write = false;
    bool frequent = false;
    /// kMprotect: one call covering regions[region] through
    /// regions[region+1] — the multi-VMA range whose mid-loop fault point
    /// the journal exists to make safe.
    bool span = false;

    static const char *name(Kind kind);
};

/// A fresh simulated world; rebuilt from scratch for every injected run so
/// earlier faults cannot leak state between runs.
struct SweepHarness::World {
    hw::ArchParams params;
    std::unique_ptr<hw::Machine> machine;
    std::unique_ptr<kernel::Process> proc;
    std::unique_ptr<VdomSystem> sys;
    std::vector<kernel::Task *> tasks;
    std::vector<VdomId> doms;
    std::vector<std::pair<hw::Vpn, std::uint64_t>> regions;
};

const char *
SweepHarness::Op::name(Kind kind)
{
    switch (kind) {
      case Kind::kInit: return "vdom_init";
      case Kind::kVdrAlloc: return "vdr_alloc";
      case Kind::kVdrFree: return "vdr_free";
      case Kind::kMmap: return "mmap";
      case Kind::kAlloc: return "vdom_alloc";
      case Kind::kMprotect: return "vdom_mprotect";
      case Kind::kWrvdr: return "wrvdr";
      case Kind::kAccess: return "access";
      case Kind::kFreeDom: return "vdom_free";
    }
    return "?";
}

SweepHarness::SweepHarness(const SweepConfig &config)
    : config_(config), flight_(config.cores, config.flight_per_core)
{
}

SweepHarness::~SweepHarness() = default;

std::unique_ptr<SweepHarness::World>
SweepHarness::build_world() const
{
    // Same-config worlds must be bit-identical, so the global id counters
    // restart with every rebuild (mirrors tests/test_invariants.cc).
    kernel::reset_unique_asids();
    kernel::Vds::reset_ctx_ids();
    auto w = std::make_unique<World>();
    w->params = config_.arch == hw::ArchKind::kX86
                    ? hw::ArchParams::x86(config_.cores)
                    : hw::ArchParams::arm(config_.cores);
    w->machine = std::make_unique<hw::Machine>(w->params);
    w->proc = std::make_unique<kernel::Process>(*w->machine);
    w->sys = std::make_unique<VdomSystem>(*w->proc);
    for (std::size_t t = 0; t < config_.threads; ++t)
        w->tasks.push_back(w->proc->create_task());
    return w;
}

std::vector<SweepHarness::Op>
SweepHarness::make_script() const
{
    using Kind = Op::Kind;
    std::vector<Op> ops;
    std::size_t d = config_.domains;

    // Deterministic prologue: bring-up plus the shapes the journal must
    // protect — per-domain single-VMA mprotects, then a spanning mprotect
    // over two *present* VMAs (its mid-range fault point must undo real
    // PTE retags), then a second area chained onto an existing vdom.
    ops.push_back({.kind = Kind::kInit});
    for (std::size_t t = 0; t < config_.threads; ++t)
        ops.push_back({.kind = Kind::kVdrAlloc, .task = t,
                       .pages = 2 + t % 3});
    for (std::size_t i = 0; i < d; ++i)
        ops.push_back({.kind = Kind::kAlloc, .frequent = i % 3 == 0});
    for (std::size_t i = 0; i < d; ++i)
        ops.push_back({.kind = Kind::kMmap, .pages = 1 + i % 3});
    for (std::size_t i = 0; i < d; ++i)
        ops.push_back({.kind = Kind::kMprotect, .dom = i, .region = i});
    ops.push_back({.kind = Kind::kMmap, .pages = 2});  // regions[d]
    ops.push_back({.kind = Kind::kMmap, .pages = 3});  // regions[d + 1]
    // Fault the spanned pages in while still common, so the spanning
    // mprotect retags present PTEs.
    ops.push_back({.kind = Kind::kAccess, .task = 0, .region = d,
                   .write = true});
    ops.push_back({.kind = Kind::kAccess, .task = 1 % config_.threads,
                   .region = d + 1});
    ops.push_back({.kind = Kind::kAlloc});             // doms[d]
    ops.push_back({.kind = Kind::kMprotect, .dom = d, .region = d,
                   .span = true});
    ops.push_back({.kind = Kind::kMmap, .pages = 2});  // regions[d + 2]
    ops.push_back({.kind = Kind::kMprotect, .dom = 0, .region = d + 2});

    // Seeded churn: grants, revokes, accesses, VDR recycling.  The
    // generator tracks VDR liveness so wrvdr always has a register to
    // write (kNoVdr is a validation outcome, not a fault path).
    Rng rng(config_.seed ^ 0xc2b2ae3d27d4eb4fULL);
    std::vector<bool> has_vdr(config_.threads, true);
    std::size_t ndoms = d + 1;
    std::size_t nregions = d + 3;
    for (int i = 0; i < config_.churn_ops; ++i) {
        std::size_t t = rng.below(config_.threads);
        switch (rng.below(6)) {
          case 0:
          case 1:
            if (has_vdr[t])
                ops.push_back({.kind = Kind::kWrvdr, .task = t,
                               .dom = rng.below(ndoms),
                               .perm = VPerm::kFullAccess});
            break;
          case 2:
            if (has_vdr[t])
                ops.push_back({.kind = Kind::kWrvdr, .task = t,
                               .dom = rng.below(ndoms),
                               .perm = VPerm::kAccessDisable});
            break;
          case 3:
          case 4:
            ops.push_back({.kind = Kind::kAccess, .task = t,
                           .region = rng.below(nregions),
                           .write = rng.below(2) != 0});
            break;
          case 5:
            ops.push_back({.kind = Kind::kVdrFree, .task = t});
            ops.push_back({.kind = Kind::kVdrAlloc, .task = t,
                           .pages = 2});
            break;
        }
    }

    // Epilogue: grant → revoke → free on a throwaway domain, so the sweep
    // covers vdom_free of a domain that reached a VDS.
    ops.push_back({.kind = Kind::kAlloc});             // doms[d + 1]
    ops.push_back({.kind = Kind::kMmap, .pages = 1});  // regions[d + 3]
    ops.push_back({.kind = Kind::kMprotect, .dom = d + 1,
                   .region = d + 3});
    ops.push_back({.kind = Kind::kWrvdr, .task = 0, .dom = d + 1,
                   .perm = VPerm::kFullAccess});
    ops.push_back({.kind = Kind::kWrvdr, .task = 0, .dom = d + 1,
                   .perm = VPerm::kAccessDisable});
    ops.push_back({.kind = Kind::kFreeDom, .dom = d + 1});
    return ops;
}

void
SweepHarness::prepare(World &w, const Op &op) const
{
    // Thread-scoped ops act from their task's core; the switch itself
    // runs unarmed — the sweep targets the API op, not the scheduler.
    switch (op.kind) {
      case Op::Kind::kVdrAlloc:
      case Op::Kind::kVdrFree:
      case Op::Kind::kWrvdr:
      case Op::Kind::kAccess: {
        hw::Core &core = w.machine->core(op.task % config_.cores);
        w.proc->switch_to(core, *w.tasks[op.task], false);
        break;
      }
      default:
        break;
    }
}

VdomStatus
SweepHarness::perform(World &w, const Op &op, bool *verdict_ok) const
{
    hw::Core &core0 = w.machine->core(0);
    switch (op.kind) {
      case Op::Kind::kInit:
        return w.sys->vdom_init(core0);
      case Op::Kind::kVdrAlloc:
        return w.sys->vdr_alloc(w.machine->core(op.task % config_.cores),
                                *w.tasks[op.task], op.pages);
      case Op::Kind::kVdrFree:
        return w.sys->vdr_free(w.machine->core(op.task % config_.cores),
                               *w.tasks[op.task]);
      case Op::Kind::kMmap:
        w.regions.emplace_back(w.proc->mm().mmap(op.pages), op.pages);
        return VdomStatus::kOk;
      case Op::Kind::kAlloc: {
        VdomId v = w.sys->vdom_alloc(core0, op.frequent);
        w.doms.push_back(v);
        return v == kInvalidVdom ? VdomStatus::kResourceExhausted
                                 : VdomStatus::kOk;
      }
      case Op::Kind::kMprotect: {
        auto [vpn, pages] = w.regions[op.region];
        if (op.span) {
            auto [v2, p2] = w.regions[op.region + 1];
            pages = v2 + p2 - vpn;
        }
        return w.sys->vdom_mprotect(core0, vpn, pages, w.doms[op.dom]);
      }
      case Op::Kind::kWrvdr:
        return w.sys->wrvdr(w.machine->core(op.task % config_.cores),
                            *w.tasks[op.task], w.doms[op.dom], op.perm);
      case Op::Kind::kAccess: {
        kernel::Task &task = *w.tasks[op.task];
        hw::Core &core = w.machine->core(op.task % config_.cores);
        hw::Vpn vpn = w.regions[op.region].first;
        // DESIGN.md invariant 1: outcome == VDR policy, always — injected
        // faults may slow an access down, never change its verdict.
        VdomId vd = w.proc->mm().vdom_of(vpn);
        const Vdr *vdr = task.vdr();
        VPerm held = vdr ? vdr->get(vd) : VPerm::kAccessDisable;
        bool allowed =
            vd == kCommonVdom ||
            (op.write ? held == VPerm::kFullAccess : vperm_active(held));
        VAccess res = w.sys->access(core, task, vpn, op.write);
        if (verdict_ok)
            *verdict_ok = res.ok == allowed;
        return VdomStatus::kOk;
      }
      case Op::Kind::kFreeDom:
        return w.sys->vdom_free(core0, w.doms[op.dom]);
    }
    return VdomStatus::kOk;
}

void
SweepHarness::fold(SweepResult &result, const std::string &line) const
{
    // Order-dependent chain: xor in the line hash, then smear with the
    // FNV prime, so reordered runs cannot collide to the same digest.
    result.digest ^= snapshot_hash(line);
    result.digest *= 1099511628211ULL;
}

void
SweepHarness::record_violation(SweepResult &result, World *world,
                               const FaultPlan *plan,
                               const std::string &what)
{
    ++result.violations;
    if (!result.first_violation.empty())
        return;
    result.first_violation = what;
    if (config_.postmortem_path.empty() || world == nullptr)
        return;
    telemetry::PostmortemInfo info;
    info.reason = "sweep violation: " + what;
    info.context.emplace_back("arch", hw::arch_name(config_.arch));
    info.context.emplace_back("seed", std::to_string(config_.seed));
    info.context.emplace_back("cores", std::to_string(config_.cores));
    info.flight = &flight_;
    info.metrics = telemetry::metrics_sink();
    info.plan = plan;
    info.system = world->sys.get();
    result.postmortem_written =
        telemetry::export_postmortem(config_.postmortem_path, info);
}

void
SweepHarness::run_injection(const std::vector<Op> &script, std::size_t i,
                            FaultSite site, std::uint64_t k, bool sticky,
                            SweepResult &result)
{
    auto w = build_world();
    for (std::size_t j = 0; j < i; ++j) {
        prepare(*w, script[j]);
        perform(*w, script[j], nullptr);
    }
    const Op &op = script[i];
    prepare(*w, op);

    const std::string before = snapshot_state(*w->sys);
    const std::uint64_t rollbacks_before =
        w->proc->mm().journal().rollbacks();

    FaultPlan plan(config_.seed);
    plan.arm_exact(site, k, sticky);
    flight_.clear();
    bool verdict_ok = true;
    VdomStatus st;
    {
        ScopedFaults armed(plan);
        std::optional<telemetry::ScopedFlightRecorder> recording;
        if (config_.flight_per_core > 0)
            recording.emplace(flight_);
        st = perform(*w, op, &verdict_ok);
    }
    ++result.injected_runs;
    result.rollbacks +=
        w->proc->mm().journal().rollbacks() - rollbacks_before;

    const std::string label =
        "op " + std::to_string(i) + " (" + Op::name(op.kind) +
        ") site " + fault_site_name(site) + " k=" + std::to_string(k) +
        (sticky ? " sticky" : "") + " (seed " +
        std::to_string(config_.seed) + ", " + hw::arch_name(config_.arch) +
        ")";
    const std::string after = snapshot_state(*w->sys);

    if (is_fault_status(st)) {
        // A graceful failure must be a perfect no-op architecturally.
        ++result.failed_ops;
        ++result.snapshot_checks;
        if (after != before)
            record_violation(result, w.get(), &plan,
                             label + ": failed op mutated state");
    } else if (st == VdomStatus::kOk) {
        if (plan.total_fires() > 0)
            ++result.degraded_ops;
        if (!verdict_ok)
            record_violation(
                result, w.get(), &plan,
                label + ": access verdict diverged from VDR policy");
    } else {
        record_violation(result, w.get(), &plan,
                         label + ": unexpected status " + status_name(st));
    }

    std::string bad = check_design_invariants(*w->proc, w->params,
                                              &result.invariant_checks);
    if (!bad.empty())
        record_violation(result, w.get(), &plan, label + ": " + bad);

    // Rolled-back ops must be cleanly retryable once the fault clears.
    if (is_fault_status(st)) {
        bool retry_ok = true;
        VdomStatus retry = perform(*w, op, &retry_ok);
        if (retry != VdomStatus::kOk || !retry_ok)
            record_violation(result, w.get(), &plan,
                             label + ": retry after rollback failed: " +
                                 status_name(retry));
    }

    fold(result, label + " -> " + status_name(st) + " " +
                     std::to_string(snapshot_hash(after)));
}

SweepResult
SweepHarness::run()
{
    SweepResult result;
    const std::vector<Op> script = make_script();
    result.script_ops = script.size();

    // Probe pass: one clean world with every site count-armed, recording
    // per-(op, site) crossing counts.  The script must run clean — the
    // sweep's promises are meaningless over a broken baseline.
    std::vector<std::array<std::uint64_t, kNumFaultSites>> crossings(
        script.size());
    {
        auto w = build_world();
        FaultPlan probe(config_.seed);
        for (std::size_t s = 0; s < kNumFaultSites; ++s)
            probe.arm_probe(static_cast<FaultSite>(s));
        ScopedFaults armed(probe);
        for (std::size_t i = 0; i < script.size(); ++i) {
            const Op &op = script[i];
            prepare(*w, op);
            std::array<std::uint64_t, kNumFaultSites> before{};
            for (std::size_t s = 0; s < kNumFaultSites; ++s)
                before[s] = probe.occurrences(static_cast<FaultSite>(s));
            bool verdict_ok = true;
            VdomStatus st = perform(*w, op, &verdict_ok);
            for (std::size_t s = 0; s < kNumFaultSites; ++s)
                crossings[i][s] =
                    probe.occurrences(static_cast<FaultSite>(s)) -
                    before[s];
            std::string label = "clean op " + std::to_string(i) + " (" +
                                Op::name(op.kind) + ")";
            if (st != VdomStatus::kOk || !verdict_ok) {
                record_violation(result, w.get(), &probe,
                                 label + " failed: " + status_name(st));
                return result;
            }
            std::string bad = check_design_invariants(
                *w->proc, w->params, &result.invariant_checks);
            if (!bad.empty()) {
                record_violation(result, w.get(), &probe,
                                 label + ": " + bad);
                return result;
            }
            fold(result, label + " " +
                             std::to_string(snapshot_hash(
                                 snapshot_state(*w->sys))));
        }
    }

    // Injection passes: one fresh world per (op, site, crossing[, mode]).
    for (std::size_t i = 0; i < script.size(); ++i) {
        for (std::size_t s = 0; s < kNumFaultSites; ++s) {
            auto site = static_cast<FaultSite>(s);
            std::uint64_t n = crossings[i][s];
            result.fault_points += n;
            for (std::uint64_t k = 1; k <= n; ++k) {
                run_injection(script, i, site, k, false, result);
                if (config_.sticky && sticky_swept(site))
                    run_injection(script, i, site, k, true, result);
            }
        }
    }
    return result;
}

// --- CrashSweepHarness ---------------------------------------------------

/// One scripted operation.  Domain/region fields index the World's
/// append-only `doms`/`regions` vectors; every op commits at most one WAL
/// transaction, which is what keeps the recovery oracle binary (the
/// durable state is golden[i] when op i committed, golden[i-1] otherwise
/// — never anything in between).
struct CrashSweepHarness::Op {
    enum class Kind : std::uint8_t {
        kInit,            ///< vdom_init
        kVdrAlloc,        ///< vdr_alloc(nas = pages)
        kVdrFree,         ///< vdr_free
        kMmap,            ///< mm.mmap(pages) under a harness WAL intent
        kAlloc,           ///< vdom_alloc(frequent) — appends a dom
        kMprotect,        ///< vdom_mprotect(regions[region], doms[dom])
        kWrvdr,           ///< wrvdr(doms[dom], perm)
        kAccess,          ///< access(regions[region], write) + oracle
        kFreeDom,         ///< vdom_free(doms[dom])
        kArena,           ///< DomainAllocator ctor (one vdom_alloc txn)
        kSecureAlloc,     ///< arena allocate forcing one pool growth
        kSandboxMprotect, ///< Sandbox::sandbox_mprotect
        kPmoAttach,       ///< apps::pmo_attach(pmo, pages, seed)
        kPmoDetach,       ///< apps::pmo_detach(pmo)
    };

    Kind kind = Kind::kInit;
    std::size_t task = 0;    ///< Acting thread (thread-scoped ops).
    std::size_t dom = 0;     ///< Index into World::doms.
    std::size_t region = 0;  ///< Index into World::regions.
    std::uint64_t pages = 0; ///< Page count / nas budget / PMO size.
    VPerm perm = VPerm::kFullAccess;
    bool write = false;
    bool frequent = false;
    int pmo = 0;             ///< PMO object id.
    std::uint64_t seed = 0;  ///< PMO content seed.

    static const char *name(Kind kind);
};

/// A fresh simulated world, rebuilt for every crash/reboot cycle.  The
/// durable media (WAL, PmoStore) live in the harness, not here.
struct CrashSweepHarness::World {
    hw::ArchParams params;
    std::unique_ptr<hw::Machine> machine;
    std::unique_ptr<kernel::Process> proc;
    std::unique_ptr<VdomSystem> sys;
    std::vector<kernel::Task *> tasks;
    std::vector<VdomId> doms;
    std::vector<std::pair<hw::Vpn, std::uint64_t>> regions;
    std::unique_ptr<DomainAllocator> arena;
    std::unique_ptr<Sandbox> sandbox;
    std::map<int, VdomId> pmos;  ///< Attached PMO -> protecting vdom.
};

/// Probe-pass golden state after each script op: the durable snapshot a
/// recovered world must reproduce, the WAL commit count that selects it,
/// and the PMO objects the store must hold intact.
struct CrashSweepHarness::Golden {
    std::string durable;
    std::uint64_t commits = 0;
    /// pmo -> (pages, seed) expected durable at this boundary.
    std::map<int, std::pair<std::uint64_t, std::uint64_t>> pmos;
};

const char *
CrashSweepHarness::Op::name(Kind kind)
{
    switch (kind) {
      case Kind::kInit: return "vdom_init";
      case Kind::kVdrAlloc: return "vdr_alloc";
      case Kind::kVdrFree: return "vdr_free";
      case Kind::kMmap: return "mmap";
      case Kind::kAlloc: return "vdom_alloc";
      case Kind::kMprotect: return "vdom_mprotect";
      case Kind::kWrvdr: return "wrvdr";
      case Kind::kAccess: return "access";
      case Kind::kFreeDom: return "vdom_free";
      case Kind::kArena: return "arena_create";
      case Kind::kSecureAlloc: return "secure_alloc";
      case Kind::kSandboxMprotect: return "sandbox_mprotect";
      case Kind::kPmoAttach: return "pmo_attach";
      case Kind::kPmoDetach: return "pmo_detach";
    }
    return "?";
}

CrashSweepHarness::CrashSweepHarness(const CrashSweepConfig &config)
    : config_(config), flight_(config.cores, config.flight_per_core)
{
}

CrashSweepHarness::~CrashSweepHarness() = default;

std::unique_ptr<CrashSweepHarness::World>
CrashSweepHarness::build_world(kernel::Wal *wal) const
{
    // Same-config worlds must be bit-identical — replay determinism is
    // what lets recovery reconverge on recorded ids and addresses.
    kernel::reset_unique_asids();
    kernel::Vds::reset_ctx_ids();
    auto w = std::make_unique<World>();
    w->params = config_.arch == hw::ArchKind::kX86
                    ? hw::ArchParams::x86(config_.cores)
                    : hw::ArchParams::arm(config_.cores);
    w->machine = std::make_unique<hw::Machine>(w->params);
    w->proc = std::make_unique<kernel::Process>(*w->machine);
    w->sys = std::make_unique<VdomSystem>(*w->proc);
    for (std::size_t t = 0; t < config_.threads; ++t)
        w->tasks.push_back(w->proc->create_task());
    w->proc->mm().set_wal(wal);
    return w;
}

std::vector<CrashSweepHarness::Op>
CrashSweepHarness::make_script() const
{
    using Kind = Op::Kind;
    std::vector<Op> ops;
    std::size_t d = config_.domains;

    // Deterministic prologue: bring-up, one protected region per domain,
    // and faulted-in pages so later retags cover present PTEs.
    ops.push_back({.kind = Kind::kInit});
    for (std::size_t t = 0; t < config_.threads; ++t)
        ops.push_back({.kind = Kind::kVdrAlloc, .task = t,
                       .pages = 2 + t % 2});
    for (std::size_t i = 0; i < d; ++i)
        ops.push_back({.kind = Kind::kAlloc, .frequent = i % 3 == 0});
    for (std::size_t i = 0; i < d; ++i)
        ops.push_back({.kind = Kind::kMmap, .pages = 1 + i % 2});
    for (std::size_t i = 0; i < d; ++i)
        ops.push_back({.kind = Kind::kMprotect, .dom = i, .region = i});
    ops.push_back({.kind = Kind::kAccess, .task = 0, .write = true});
    ops.push_back({.kind = Kind::kAccess, .task = 1 % config_.threads,
                   .region = d > 1 ? 1 : 0});

    // The other WAL-covered entry points: secure-pool growth (the arena
    // ctor allocates the vdom, the first allocate grows the pool) and the
    // sandbox mprotect facade over a fresh region.
    ops.push_back({.kind = Kind::kArena});
    ops.push_back({.kind = Kind::kSecureAlloc});
    ops.push_back({.kind = Kind::kMmap, .pages = 1});  // regions[d]
    ops.push_back({.kind = Kind::kSandboxMprotect, .dom = 0, .region = d});

    // Seeded churn: grants, revokes, accesses, VDR recycling.
    Rng rng(config_.seed ^ 0xa0761d6478bd642fULL);
    std::size_t nregions = d + 1;
    for (int i = 0; i < config_.churn_ops; ++i) {
        std::size_t t = rng.below(config_.threads);
        switch (rng.below(6)) {
          case 0:
          case 1:
            ops.push_back({.kind = Kind::kWrvdr, .task = t,
                           .dom = rng.below(d),
                           .perm = VPerm::kFullAccess});
            break;
          case 2:
            ops.push_back({.kind = Kind::kWrvdr, .task = t,
                           .dom = rng.below(d),
                           .perm = VPerm::kAccessDisable});
            break;
          case 3:
          case 4:
            ops.push_back({.kind = Kind::kAccess, .task = t,
                           .region = rng.below(nregions),
                           .write = rng.below(2) != 0});
            break;
          case 5:
            ops.push_back({.kind = Kind::kVdrFree, .task = t});
            ops.push_back({.kind = Kind::kVdrAlloc, .task = t,
                           .pages = 2});
            break;
        }
    }

    // Epilogue: the PMO attach/detach durability pair (attach writes
    // content before COMMIT, detach erases after), then free of a domain
    // that reached a VDS.
    ops.push_back({.kind = Kind::kPmoAttach, .pages = 2, .pmo = 1,
                   .seed = config_.seed + 0x11});
    ops.push_back({.kind = Kind::kPmoAttach, .pages = 3, .pmo = 2,
                   .seed = config_.seed + 0x23});
    ops.push_back({.kind = Kind::kPmoDetach, .pmo = 1});
    ops.push_back({.kind = Kind::kWrvdr, .task = 0, .dom = d - 1,
                   .perm = VPerm::kAccessDisable});
    ops.push_back({.kind = Kind::kFreeDom, .dom = d - 1});
    return ops;
}

void
CrashSweepHarness::prepare(World &w, const Op &op) const
{
    // Thread-scoped ops act from their task's core; the switch itself is
    // outside the armed window (the sweep targets the API op).
    switch (op.kind) {
      case Op::Kind::kVdrAlloc:
      case Op::Kind::kVdrFree:
      case Op::Kind::kWrvdr:
      case Op::Kind::kAccess: {
        hw::Core &core = w.machine->core(op.task % config_.cores);
        w.proc->switch_to(core, *w.tasks[op.task], false);
        break;
      }
      default:
        break;
    }
}

VdomStatus
CrashSweepHarness::perform(World &w, const Op &op, bool *verdict_ok)
{
    hw::Core &core0 = w.machine->core(0);
    switch (op.kind) {
      case Op::Kind::kInit:
        return w.sys->vdom_init(core0);
      case Op::Kind::kVdrAlloc:
        return w.sys->vdr_alloc(w.machine->core(op.task % config_.cores),
                                *w.tasks[op.task], op.pages);
      case Op::Kind::kVdrFree:
        return w.sys->vdr_free(w.machine->core(op.task % config_.cores),
                               *w.tasks[op.task]);
      case Op::Kind::kMmap: {
        // MmStruct::mmap has no core to charge through, so the script
        // logs the mapping intent itself — the shape an allocating
        // runtime would use.
        kernel::WalTxn wtxn(w.proc->mm().wal(), core0,
                            kernel::WalOp::kMmap, 0, op.pages, 0);
        hw::Vpn vpn = w.proc->mm().mmap(op.pages);
        w.regions.emplace_back(vpn, op.pages);
        wtxn.commit(vpn);
        return VdomStatus::kOk;
      }
      case Op::Kind::kAlloc: {
        VdomId v = w.sys->vdom_alloc(core0, op.frequent);
        w.doms.push_back(v);
        return v == kInvalidVdom ? VdomStatus::kResourceExhausted
                                 : VdomStatus::kOk;
      }
      case Op::Kind::kMprotect: {
        auto [vpn, pages] = w.regions[op.region];
        return w.sys->vdom_mprotect(core0, vpn, pages, w.doms[op.dom]);
      }
      case Op::Kind::kWrvdr:
        return w.sys->wrvdr(w.machine->core(op.task % config_.cores),
                            *w.tasks[op.task], w.doms[op.dom], op.perm);
      case Op::Kind::kAccess: {
        kernel::Task &task = *w.tasks[op.task];
        hw::Core &core = w.machine->core(op.task % config_.cores);
        hw::Vpn vpn = w.regions[op.region].first;
        VdomId vd = w.proc->mm().vdom_of(vpn);
        const Vdr *vdr = task.vdr();
        VPerm held = vdr ? vdr->get(vd) : VPerm::kAccessDisable;
        bool allowed =
            vd == kCommonVdom ||
            (op.write ? held == VPerm::kFullAccess : vperm_active(held));
        VAccess res = w.sys->access(core, task, vpn, op.write);
        if (verdict_ok)
            *verdict_ok = res.ok == allowed;
        return VdomStatus::kOk;
      }
      case Op::Kind::kFreeDom:
        return w.sys->vdom_free(core0, w.doms[op.dom]);
      case Op::Kind::kArena: {
        w.arena =
            std::make_unique<DomainAllocator>(*w.sys, core0, false, 2);
        return w.arena->domain() == kInvalidVdom
                   ? VdomStatus::kResourceExhausted
                   : VdomStatus::kOk;
      }
      case Op::Kind::kSecureAlloc: {
        // First allocation after the ctor: the pool is empty, so this
        // always takes exactly one kSecureGrow transaction.
        SecureAllocation a = w.arena->allocate(core0, 64);
        return a.ok() ? VdomStatus::kOk : w.arena->last_status();
      }
      case Op::Kind::kSandboxMprotect: {
        if (!w.sandbox)
            w.sandbox = std::make_unique<Sandbox>(*w.sys);
        auto [vpn, pages] = w.regions[op.region];
        return w.sandbox->sandbox_mprotect(core0, vpn, pages,
                                           w.doms[op.dom]);
      }
      case Op::Kind::kPmoAttach: {
        apps::PmoAttachResult r = apps::pmo_attach(
            *w.sys, core0, store_, op.pmo, op.pages, op.seed);
        if (r.status == VdomStatus::kOk)
            w.pmos[op.pmo] = r.vdom;
        return r.status;
      }
      case Op::Kind::kPmoDetach: {
        auto it = w.pmos.find(op.pmo);
        if (it == w.pmos.end())
            return VdomStatus::kInvalidRange;
        VdomStatus st =
            apps::pmo_detach(*w.sys, core0, store_, op.pmo, it->second);
        if (st == VdomStatus::kOk)
            w.pmos.erase(it);
        return st;
      }
    }
    return VdomStatus::kOk;
}

void
CrashSweepHarness::fold(CrashSweepResult &result,
                        const std::string &line) const
{
    // Order-dependent chain (same shape as the fault sweep's): reordered
    // runs cannot collide to the same digest.
    result.digest ^= snapshot_hash(line);
    result.digest *= 1099511628211ULL;
}

void
CrashSweepHarness::record_violation(CrashSweepResult &result, World *world,
                                    const FaultPlan *plan,
                                    const std::string &what)
{
    ++result.violations;
    if (!result.first_violation.empty())
        return;
    result.first_violation = what;
    if (config_.postmortem_path.empty() || world == nullptr)
        return;
    telemetry::PostmortemInfo info;
    info.reason = "crash sweep violation: " + what;
    info.context.emplace_back("arch", hw::arch_name(config_.arch));
    info.context.emplace_back("seed", std::to_string(config_.seed));
    info.context.emplace_back("cores", std::to_string(config_.cores));
    info.flight = &flight_;
    info.metrics = telemetry::metrics_sink();
    info.plan = plan;
    info.system = world->sys.get();
    result.postmortem_written =
        telemetry::export_postmortem(config_.postmortem_path, info);
}

void
CrashSweepHarness::verify_recovered(World &w, const Golden &expect,
                                    const std::string &label,
                                    CrashSweepResult &result)
{
    // Durable-snapshot oracle first (the verdict sweep below mutates
    // volatile state).
    ++result.snapshot_checks;
    const std::string after = snapshot_durable_state(*w.sys);
    if (after != expect.durable) {
        record_violation(result, &w, nullptr,
                         label + ": recovered durable state diverged");
        return;
    }

    std::string bad = check_design_invariants(*w.proc, w.params,
                                              &result.invariant_checks);
    if (!bad.empty()) {
        record_violation(result, &w, nullptr, label + ": " + bad);
        return;
    }

    // PMO content integrity: exactly the golden object set, every page
    // matching its seed-derived pattern (torn attach content undone,
    // interrupted detach erase redone).
    ++result.pmo_checks;
    if (store_.content.size() != expect.pmos.size()) {
        record_violation(result, &w, nullptr,
                         label + ": PMO store object set diverged");
        return;
    }
    for (const auto &[pmo, shape] : expect.pmos) {
        if (!store_.intact(pmo, shape.second, shape.first)) {
            record_violation(result, &w, nullptr,
                             label + ": PMO " + std::to_string(pmo) +
                                 " content not intact");
            return;
        }
    }

    // Access-verdict oracle over the recovered world: every outcome must
    // equal the replayed VDR policy (DESIGN.md invariant 1), from every
    // thread, over every user VMA.
    std::vector<hw::Vpn> starts;
    for (const auto &[start, vma] : w.proc->mm().vmas()) {
        if (vma.vdom != kApiVdom)
            starts.push_back(start);
    }
    for (std::size_t t = 0; t < w.tasks.size(); ++t) {
        kernel::Task &task = *w.tasks[t];
        hw::Core &core = w.machine->core(t % config_.cores);
        w.proc->switch_to(core, task, false);
        for (hw::Vpn vpn : starts) {
            VdomId vd = w.proc->mm().vdom_of(vpn);
            const Vdr *vdr = task.vdr();
            VPerm held = vdr ? vdr->get(vd) : VPerm::kAccessDisable;
            bool allowed = vd == kCommonVdom || vperm_active(held);
            VAccess res = w.sys->access(core, task, vpn, false);
            if (res.ok != allowed) {
                record_violation(
                    result, &w, nullptr,
                    label + ": recovered access verdict diverged (vpn " +
                        std::to_string(vpn) + ")");
                return;
            }
        }
    }

    fold(result, label + " recovered " +
                     std::to_string(snapshot_hash(after)));
}

void
CrashSweepHarness::run_injection(const std::vector<Op> &script,
                                 const std::vector<Golden> &golden,
                                 std::size_t i, std::uint64_t k,
                                 CrashSweepResult &result)
{
    // Fresh durable media + fresh world; the prefix replays fault-free
    // (only kCrash is ever armed, and only around the target op).
    wal_.reset();
    store_.content.clear();
    auto w = build_world(&wal_);
    for (std::size_t j = 0; j < i; ++j) {
        prepare(*w, script[j]);
        VdomStatus st = perform(*w, script[j], nullptr);
        if (st != VdomStatus::kOk) {
            record_violation(result, w.get(), nullptr,
                             "prefix op " + std::to_string(j) +
                                 " failed: " + status_name(st));
            return;
        }
    }
    const Op &op = script[i];
    prepare(*w, op);

    const std::string label =
        "op " + std::to_string(i) + " (" + Op::name(op.kind) +
        ") crash k=" + std::to_string(k) + " (seed " +
        std::to_string(config_.seed) + ", " + hw::arch_name(config_.arch) +
        ")";

    FaultPlan plan(config_.seed);
    plan.arm_exact(FaultSite::kCrash, k, false);
    flight_.clear();
    bool crashed = false;
    {
        ScopedFaults armed(plan);
        std::optional<telemetry::ScopedFlightRecorder> recording;
        if (config_.flight_per_core > 0)
            recording.emplace(flight_);
        try {
            perform(*w, op, nullptr);
        } catch (const PowerLoss &) {
            crashed = true;
        }
    }
    ++result.injected_runs;
    if (!crashed) {
        record_violation(result, w.get(), &plan,
                         label + ": armed crash never fired");
        return;
    }

    // Reboot: the crashed world is discarded wholesale; only the WAL and
    // the PMO store survive.  The recovered world runs with no WAL
    // attached (redo must not re-log) and no fault plan armed.
    w.reset();
    wal_.reboot();
    auto fresh = build_world(nullptr);

    RecoveryHook hook = [this](const kernel::WalCommitted &entry,
                               bool committed) {
        const kernel::WalRecord &b = entry.begin;
        if (b.op == kernel::WalOp::kPmoAttach) {
            auto pmo = static_cast<int>(b.a);
            if (committed) {
                // Redo is an idempotent rewrite, not a bare verify: a
                // later committed detach may already have erased this
                // object (its own redo will erase it again), and the
                // content is deterministic from the logged seed.
                auto pages = static_cast<std::size_t>(b.b);
                if (!store_.intact(pmo, b.c, pages)) {
                    std::vector<std::uint64_t> &content =
                        store_.content[pmo];
                    content.clear();
                    for (std::size_t p = 0; p < pages; ++p)
                        content.push_back(
                            apps::PmoStore::pattern(pmo, b.c, p));
                }
                return true;
            }
            store_.content.erase(pmo);  // Torn attach: undo the content.
            return true;
        }
        if (b.op == kernel::WalOp::kPmoDetach) {
            // Idempotent erase redo: finishes an interrupted detach.
            store_.content.erase(static_cast<int>(b.a));
            return true;
        }
        return true;
    };

    RecoveryStats stats;
    {
        std::optional<telemetry::ScopedFlightRecorder> recording;
        if (config_.flight_per_core > 0)
            recording.emplace(flight_);
        stats = recover(*fresh->sys, fresh->machine->core(0), wal_, hook);
    }
    result.replayed_ops += stats.replayed;
    result.torn_records += stats.torn;
    result.undone_ops += stats.undone;
    if (!stats.ok) {
        record_violation(result, fresh.get(), &plan,
                         label + ": recovery failed: " + stats.error);
        return;
    }
    ++result.recoveries;

    // Atomicity oracle: the WAL decides which golden boundary the
    // recovered world must sit on — after op i when its transaction
    // committed before the crash, after op i-1 otherwise.  Any other
    // committed count means an op leaked more than one transaction.
    const Golden *expect = nullptr;
    if (stats.committed == golden[i + 1].commits)
        expect = &golden[i + 1];
    else if (stats.committed == golden[i].commits)
        expect = &golden[i];
    if (expect == nullptr) {
        record_violation(result, fresh.get(), &plan,
                         label + ": committed count " +
                             std::to_string(stats.committed) +
                             " matches no op boundary");
        return;
    }

    verify_recovered(*fresh, *expect, label, result);
    fold(result, label + " committed=" + std::to_string(stats.committed) +
                     " replayed=" + std::to_string(stats.replayed) +
                     " torn=" + std::to_string(stats.torn));
}

CrashSweepResult
CrashSweepHarness::run()
{
    CrashSweepResult result;
    const std::vector<Op> script = make_script();
    result.script_ops = script.size();

    // Probe pass: one clean world with the WAL attached and kCrash
    // count-armed (a probe tallies crossings, never fires).  Records the
    // per-op crossing count plus the golden durable state at every op
    // boundary.
    std::vector<std::uint64_t> crossings(script.size());
    std::vector<Golden> golden(script.size() + 1);
    {
        wal_.reset();
        store_.content.clear();
        auto w = build_world(&wal_);
        FaultPlan probe(config_.seed);
        probe.arm_probe(FaultSite::kCrash);
        ScopedFaults armed(probe);
        golden[0].durable = snapshot_durable_state(*w->sys);
        std::map<int, std::pair<std::uint64_t, std::uint64_t>> live;
        for (std::size_t i = 0; i < script.size(); ++i) {
            const Op &op = script[i];
            prepare(*w, op);
            std::uint64_t before = probe.occurrences(FaultSite::kCrash);
            bool verdict_ok = true;
            VdomStatus st = perform(*w, op, &verdict_ok);
            crossings[i] =
                probe.occurrences(FaultSite::kCrash) - before;
            std::string label = "clean op " + std::to_string(i) + " (" +
                                Op::name(op.kind) + ")";
            if (st != VdomStatus::kOk || !verdict_ok) {
                record_violation(result, w.get(), &probe,
                                 label + " failed: " + status_name(st));
                return result;
            }
            std::string bad = check_design_invariants(
                *w->proc, w->params, &result.invariant_checks);
            if (!bad.empty()) {
                record_violation(result, w.get(), &probe,
                                 label + ": " + bad);
                return result;
            }
            if (op.kind == Op::Kind::kPmoAttach)
                live[op.pmo] = {op.pages, op.seed};
            else if (op.kind == Op::Kind::kPmoDetach)
                live.erase(op.pmo);
            golden[i + 1].durable = snapshot_durable_state(*w->sys);
            golden[i + 1].commits = wal_.commits();
            golden[i + 1].pmos = live;
            fold(result, label + " " +
                             std::to_string(
                                 snapshot_hash(golden[i + 1].durable)) +
                             " crossings=" +
                             std::to_string(crossings[i]) + " commits=" +
                             std::to_string(golden[i + 1].commits));
        }
    }

    // Injection passes: one crash/reboot/recover cycle per (op, k-th
    // crossing) — every WAL ordering point, every PMO persist point, and
    // (via the kCrash piggyback) every other fault site's crossing.
    for (std::size_t i = 0; i < script.size(); ++i) {
        result.crash_points += crossings[i];
        for (std::uint64_t k = 1; k <= crossings[i]; ++k)
            run_injection(script, golden, i, k, result);
    }
    return result;
}

// --- application-workload chaos ------------------------------------------

ChaosAppsResult
run_chaos_apps(const ChaosAppsConfig &config)
{
    ChaosAppsResult result;
    kernel::reset_unique_asids();
    kernel::Vds::reset_ctx_ids();
    hw::ArchParams params = config.arch == hw::ArchKind::kX86
                                ? hw::ArchParams::x86(config.cores)
                                : hw::ArchParams::arm(config.cores);
    hw::Machine machine(params);
    kernel::Process proc(machine);
    VdomSystem sys(proc);
    // Bring-up runs fault-free (mirrors ChaosHarness): chaos targets the
    // workload's steady state, not construction.
    sys.vdom_init(machine.core(0));

    FaultPlan plan(config.seed);
    for (const auto &[site, spec] : config.faults)
        plan.arm(site, spec);
    apps::VdomStrategy strat(sys, 2);
    {
        ScopedFaults armed(plan);
        switch (config.workload) {
          case ChaosAppsConfig::Workload::kHttpd: {
            apps::HttpdConfig cfg =
                apps::HttpdConfig::for_arch(config.arch, config.clients, 1);
            cfg.total_requests = config.work_items;
            cfg.host_threads = config.host_threads;
            apps::HttpdResult r =
                apps::run_httpd(machine, proc, strat, cfg);
            result.completed = r.completed;
            result.elapsed = r.elapsed;
            break;
          }
          case ChaosAppsConfig::Workload::kMysql: {
            apps::MysqlConfig cfg =
                apps::MysqlConfig::for_arch(config.arch, config.clients);
            cfg.total_queries = config.work_items;
            cfg.host_threads = config.host_threads;
            apps::MysqlResult r =
                apps::run_mysql(machine, proc, strat, cfg);
            result.completed = r.completed;
            result.elapsed = r.elapsed;
            break;
          }
          case ChaosAppsConfig::Workload::kPmo: {
            apps::PmoConfig cfg =
                apps::PmoConfig::for_arch(config.arch, config.clients);
            cfg.ops_per_thread = config.work_items;
            cfg.pmos = 16;
            cfg.pmo_pages = 8;
            cfg.host_threads = config.host_threads;
            apps::PmoResult r = apps::run_pmo(machine, proc, strat, cfg);
            result.completed = r.completed;
            result.elapsed = r.elapsed;
            break;
          }
        }
    }
    result.faults_injected = plan.total_fires();
    std::string bad =
        check_design_invariants(proc, params, &result.invariant_checks);
    if (!bad.empty()) {
        ++result.violations;
        result.first_violation = hw::arch_name(config.arch) +
                                 std::string(" (seed ") +
                                 std::to_string(config.seed) + "): " + bad;
    }
    return result;
}

}  // namespace vdom::sim
