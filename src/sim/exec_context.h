/// \file
/// Per-shard execution context for the epoch-parallel engine.
///
/// In epoch mode (sim/engine.h) every host worker advances one *shard* —
/// a group of simulated cores coupled by a shared kernel process — up to
/// the epoch horizon.  While a shard runs, a thread-local ExecContext is
/// installed so layers below the engine can tell which cores the current
/// worker owns: effects targeting a foreign core (today that is only the
/// shootdown fan-out, kernel/shootdown.h) are buffered here instead of
/// applied synchronously, and the engine replays them at the epoch
/// barrier in deterministic shard order.
///
/// Null-hook contract, like every other sim/telemetry sink: with no
/// context installed (the serial engine, or any code running outside an
/// epoch), exec_context() is a single thread-local load and every caller
/// takes the legacy synchronous path.

#pragma once

#include <cstdint>
#include <vector>

#include "hw/arch.h"

namespace vdom::sim {

/// One deferred cross-shard TLB flush: the target-side half of a
/// shootdown whose target core belongs to another shard.  The initiator
/// half (ipi_post/ipi_wait charges, retries, issue record) was already
/// charged in-shard at emission; the engine applies this record at the
/// barrier, charging ipi_handle + the flush at the target's then-current
/// clock.
struct RemoteFlush {
    std::size_t initiator = 0;
    std::size_t target = 0;
    std::uint8_t kind = 0;  ///< kernel::FlushKind (raw to avoid a cycle).
    hw::Asid asid = 0;
    hw::Vpn vpn = 0;
    std::uint64_t count = 0;
    bool target_current_asid = false;
    /// Causality id stamped on the issue record.  While staged this may be
    /// a shard-local id (>= kStagedFlowBase); the engine remaps it to the
    /// real flow id during the barrier drain.
    std::uint64_t flow = 0;
};

/// Shard-local flow ids live above this base so the barrier drain can
/// tell them apart from ids handed out by the real recorder.
constexpr std::uint64_t kStagedFlowBase = 1ULL << 62;

/// The context installed while a worker advances one shard.
struct ExecContext {
    std::uint64_t local_cores = 0;  ///< Bitmap of cores this shard owns.
    std::vector<RemoteFlush> *deferred = nullptr;

    bool
    owns(std::size_t core) const
    {
        return core < 64 && ((local_cores >> core) & 1ULL);
    }
};

/// The installed context, or nullptr (serial execution).
ExecContext *exec_context();
void set_exec_context(ExecContext *ctx);

}  // namespace vdom::sim
