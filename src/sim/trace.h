/// \file
/// Lightweight event tracer for debugging and analysis.
///
/// A bounded ring buffer of typed events (domain mapped, evicted, VDS
/// switched, thread migrated, fault, shootdown).  Tracing is opt-in and
/// zero-cost when no tracer is attached; the virtualization layer emits
/// events through the global hook.  Intended uses: post-mortem analysis in
/// tests ("exactly one migration happened, from VDS 0 to VDS 1"), and
/// human-readable dumps when debugging workload models.
///
/// Storage is a fixed-capacity flat ring (telemetry/flat_ring.h), the
/// PR-5 layout convention shared with the causal flight recorder.  Every
/// trace() additionally forwards into the flight recorder's unified
/// timeline when one is attached (telemetry/flightrec.h), so typed events
/// interleave with span boundaries and shootdown flows in program order.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "hw/arch.h"
#include "telemetry/flat_ring.h"
#include "telemetry/flightrec.h"
#include "vdom/types.h"

namespace vdom::sim {

/// Kinds of traced events.
enum class TraceEvent : std::uint8_t {
    kMapFree,     ///< vdom mapped to a free pdom (❸).
    kEvict,       ///< vdom evicted from a VDS (❺).
    kVdsSwitch,   ///< thread switched pgd (❺).
    kMigration,   ///< thread migrated to another VDS (❼/❽).
    kVdsCreate,   ///< new VDS allocated (❽).
    kFault,       ///< page/domain fault handled.
    kSigsegv,     ///< access violation delivered.
    kShootdown,   ///< remote TLB shootdown issued.
};

/// Returns a short label for \p event.
const char *trace_event_name(TraceEvent event);

/// The flight-recorder kind mirroring \p event (the two enums share
/// labels; the mapping is pinned by tests/test_flightrec.cc).
constexpr telemetry::FlightEvent
flight_event_of(TraceEvent event)
{
    switch (event) {
      case TraceEvent::kMapFree: return telemetry::FlightEvent::kMapFree;
      case TraceEvent::kEvict: return telemetry::FlightEvent::kEvict;
      case TraceEvent::kVdsSwitch:
        return telemetry::FlightEvent::kVdsSwitch;
      case TraceEvent::kMigration:
        return telemetry::FlightEvent::kMigration;
      case TraceEvent::kVdsCreate:
        return telemetry::FlightEvent::kVdsCreate;
      case TraceEvent::kFault: return telemetry::FlightEvent::kFault;
      case TraceEvent::kSigsegv: return telemetry::FlightEvent::kSigsegv;
      case TraceEvent::kShootdown:
        return telemetry::FlightEvent::kShootdown;
    }
    return telemetry::FlightEvent::kSpanInstant;
}

/// One trace record.
struct TraceRecord {
    TraceEvent event;
    hw::Cycles when = 0;        ///< Core-local time of the event.
    std::uint32_t tid = 0;      ///< Acting thread (0 = n/a).
    VdomId vdom = kInvalidVdom; ///< Subject vdom (kInvalidVdom = n/a).
    std::uint32_t vds_from = 0; ///< Source VDS id.
    std::uint32_t vds_to = 0;   ///< Destination VDS id (same = n/a).
    std::uint32_t core = 0;     ///< Core the event executed on.
};

/// Bounded ring of trace records.  Capacity 0 retains nothing (events are
/// still counted in total()).
class Tracer {
  public:
    explicit Tracer(std::size_t capacity = 4096) : records_(capacity) {}

    void
    record(const TraceRecord &rec)
    {
        if (capture_) {
            capture_->push_back(rec);
            return;
        }
        ++total_;
        records_.push(rec);
    }

    /// Capture mode (epoch-parallel staging): routes every record() into
    /// \p out verbatim; the engine replays the buffer into the real
    /// tracer at the epoch barrier.  Real tracers never capture.
    void set_capture(std::vector<TraceRecord> *out) { capture_ = out; }

    /// Events currently retained (oldest first).
    const telemetry::FlatRing<TraceRecord> &records() const
    {
        return records_;
    }

    /// Total events ever recorded (including dropped ones).
    std::uint64_t total() const { return total_; }

    /// Count of retained records matching \p event.
    std::size_t
    count(TraceEvent event) const
    {
        std::size_t n = 0;
        for (const TraceRecord &r : records_)
            if (r.event == event)
                ++n;
        return n;
    }

    /// Retained records matching \p event, oldest first.
    std::vector<TraceRecord>
    filter(TraceEvent event) const
    {
        std::vector<TraceRecord> out;
        for (const TraceRecord &r : records_)
            if (r.event == event)
                out.push_back(r);
        return out;
    }

    void
    clear()
    {
        records_.clear();
        total_ = 0;
    }

    /// Writes a human-readable dump of the retained records.
    void dump(std::ostream &out) const;

    /// One-line rendering of a record.
    static std::string format(const TraceRecord &rec);

  private:
    telemetry::FlatRing<TraceRecord> records_;
    std::vector<TraceRecord> *capture_ = nullptr;
    std::uint64_t total_ = 0;
};

namespace detail {
/// Thread-local so epoch-parallel host workers stage into per-shard
/// buffers; single-threaded code sees the old global behaviour.
extern thread_local Tracer *g_trace_sink;  ///< Use trace_sink() instead.
}  // namespace detail

/// Global trace hook: null by default (no cost); tests and tools attach a
/// Tracer around the region of interest.  Inline so the common detached
/// case is a single load + branch at every trace() site.
inline Tracer *
trace_sink()
{
    return detail::g_trace_sink;
}

inline void
set_trace_sink(Tracer *tracer)
{
    detail::g_trace_sink = tracer;
}

/// Emits \p rec to the attached tracer (if any) and mirrors it into the
/// flight recorder's unified timeline (if one is attached).
inline void
trace(const TraceRecord &rec)
{
    if (Tracer *sink = trace_sink())
        sink->record(rec);
    if (telemetry::FlightRecorder *flight = telemetry::flight_sink()) {
        flight->record({flight_event_of(rec.event), rec.core, rec.tid,
                        static_cast<std::uint64_t>(rec.when), 0,
                        rec.vdom == kInvalidVdom ? 0 : rec.vdom,
                        (static_cast<std::uint64_t>(rec.vds_from) << 32) |
                            rec.vds_to,
                        nullptr});
    }
}

/// RAII attachment of a tracer (restores the previous sink).
class ScopedTrace {
  public:
    explicit ScopedTrace(Tracer &tracer) : previous_(trace_sink())
    {
        set_trace_sink(&tracer);
    }
    ~ScopedTrace() { set_trace_sink(previous_); }

    ScopedTrace(const ScopedTrace &) = delete;
    ScopedTrace &operator=(const ScopedTrace &) = delete;

  private:
    Tracer *previous_;
};

}  // namespace vdom::sim
