/// \file
/// Thread-local shard execution context (epoch-parallel engine).

#include "sim/exec_context.h"

namespace vdom::sim {

namespace {
thread_local ExecContext *g_exec_context = nullptr;
}  // namespace

ExecContext *
exec_context()
{
    return g_exec_context;
}

void
set_exec_context(ExecContext *ctx)
{
    g_exec_context = ctx;
}

}  // namespace vdom::sim
