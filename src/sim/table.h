/// \file
/// Plain-text result tables for benchmark output.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace vdom::sim {

/// Column-aligned text table (the benches print paper-style rows with it).
class Table {
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    Table &
    columns(std::vector<std::string> names)
    {
        header_ = std::move(names);
        return *this;
    }

    Table &
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
        return *this;
    }

    /// Formats a double with \p digits decimals.
    static std::string
    num(double value, int digits = 1)
    {
        std::ostringstream out;
        out << std::fixed << std::setprecision(digits) << value;
        return out.str();
    }

    /// Formats a percentage ("3.8%").
    static std::string
    pct(double fraction, int digits = 2)
    {
        return num(fraction * 100.0, digits) + "%";
    }

    void
    print(std::ostream &out = std::cout) const
    {
        // VDOM_BENCH_CSV=1 switches every bench to plotting-ready CSV
        // without touching the harnesses.
        const char *csv = std::getenv("VDOM_BENCH_CSV");
        if (csv && csv[0] == '1') {
            print_csv(out);
            return;
        }
        std::vector<std::size_t> widths(header_.size(), 0);
        auto widen = [&](const std::vector<std::string> &cells) {
            for (std::size_t i = 0; i < cells.size(); ++i) {
                if (i >= widths.size())
                    widths.resize(i + 1, 0);
                widths[i] = std::max(widths[i], cells[i].size());
            }
        };
        widen(header_);
        for (const auto &r : rows_)
            widen(r);

        out << "== " << title_ << " ==\n";
        auto print_row = [&](const std::vector<std::string> &cells) {
            for (std::size_t i = 0; i < widths.size(); ++i) {
                std::string cell = i < cells.size() ? cells[i] : "";
                out << std::left << std::setw(static_cast<int>(widths[i]) + 2)
                    << cell;
            }
            out << "\n";
        };
        print_row(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        out << std::string(total, '-') << "\n";
        for (const auto &r : rows_)
            print_row(r);
        out << "\n";
    }

    /// CSV rendering: `# title` comment, header row, data rows.  Cells
    /// containing commas/quotes are quoted.
    void
    print_csv(std::ostream &out) const
    {
        out << "# " << title_ << "\n";
        auto emit = [&](const std::vector<std::string> &cells) {
            for (std::size_t i = 0; i < cells.size(); ++i) {
                if (i)
                    out << ",";
                bool quote =
                    cells[i].find_first_of(",\"\n") != std::string::npos;
                if (!quote) {
                    out << cells[i];
                    continue;
                }
                out << '"';
                for (char c : cells[i]) {
                    if (c == '"')
                        out << '"';
                    out << c;
                }
                out << '"';
            }
            out << "\n";
        };
        emit(header_);
        for (const auto &r : rows_)
            emit(r);
        out << "\n";
    }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace vdom::sim
