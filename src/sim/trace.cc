/// \file
/// Event tracer implementation.

#include "sim/trace.h"

#include <ostream>
#include <sstream>

namespace vdom::sim {

namespace detail {
thread_local Tracer *g_trace_sink = nullptr;
}  // namespace detail

const char *
trace_event_name(TraceEvent event)
{
    switch (event) {
      case TraceEvent::kMapFree: return "map_free";
      case TraceEvent::kEvict: return "evict";
      case TraceEvent::kVdsSwitch: return "vds_switch";
      case TraceEvent::kMigration: return "migration";
      case TraceEvent::kVdsCreate: return "vds_create";
      case TraceEvent::kFault: return "fault";
      case TraceEvent::kSigsegv: return "sigsegv";
      case TraceEvent::kShootdown: return "shootdown";
    }
    return "?";
}

std::string
Tracer::format(const TraceRecord &rec)
{
    std::ostringstream out;
    out << "[" << static_cast<std::uint64_t>(rec.when) << "] "
        << trace_event_name(rec.event);
    if (rec.tid != 0)
        out << " tid=" << rec.tid;
    if (rec.vdom != kInvalidVdom)
        out << " vdom=" << rec.vdom;
    if (rec.vds_from != rec.vds_to)
        out << " vds " << rec.vds_from << "->" << rec.vds_to;
    else
        out << " vds=" << rec.vds_from;
    return out.str();
}

void
Tracer::dump(std::ostream &out) const
{
    for (const TraceRecord &rec : records_)
        out << format(rec) << "\n";
    if (total_ > records_.size()) {
        out << "(" << (total_ - records_.size())
            << " earlier events dropped)\n";
    }
}

}  // namespace vdom::sim
