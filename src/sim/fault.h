/// \file
/// Deterministic fault injection (site x trigger x count).
///
/// The paper's correctness story (§5-§6) rests on the kernel surviving
/// hostile schedules: ASID rollover storms, eviction under pressure, IPIs
/// that arrive late.  This engine makes such adversity reproducible: a
/// `FaultPlan` arms named sites across src/hw, src/kernel and src/vdom,
/// and every decision flows through one seeded `sim::Rng`, so a failing
/// run is replayed exactly by re-arming the same plan with the same seed.
///
/// Wiring follows the telemetry null-hook pattern (telemetry/metrics.h):
/// the hook is a global pointer that is null by default, and `fault_fires`
/// is a single predictable-branch pointer test when no plan is attached —
/// an unarmed build stays cycle-identical (the cycle-identity test in
/// tests/test_telemetry.cc pins this down).
///
/// Contract for injection sites: a firing site may charge simulated
/// cycles and change *recoverable* state, but must degrade gracefully —
/// every failure surfaces as a VdomStatus or a counted, bounded retry,
/// never a crash or silent corruption.

#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "sim/rng.h"
#include "telemetry/metrics.h"

namespace vdom::sim {

/// Named injection points, one per fail-capable operation.
enum class FaultSite : std::uint8_t {
    // hw
    kTlbEntryDrop,     ///< TLB entry vanishes; lookup reports a miss.
    kPteWriteDelay,    ///< A page-table write stalls and is re-issued.
    kPermRegWriteFail, ///< Permission-register write fails; bounded retry.
    // kernel
    kIpiDrop,          ///< Shootdown IPI lost; re-posted with backoff.
    kAsidExhaustion,   ///< Forced ASID rollover (ARM) / PCID thrash (x86).
    kVdsAllocFail,     ///< VDS allocation fails; fall back to eviction.
    kVdtAllocFail,     ///< VDT area allocation fails; mprotect rejected.
    // vdom
    kVdrExhausted,     ///< VDR slot allocation fails.
    kGateEntryDenied,  ///< Secure call-gate entry aborted; retryable.
    kNumSites,
    // sim (fail-stop)
    /// Power loss: the world halts on the spot (a `PowerLoss` is thrown)
    /// instead of degrading gracefully.  Deliberately aliased past
    /// kNumSites so it is *excluded* from kNumFaultSites: every existing
    /// arm-all-sites loop and sweep stays graceful-only, and crash
    /// injection is opt-in via an explicit arm of kCrash.  When armed,
    /// kCrash piggybacks an occurrence on every other site's crossing
    /// (see FaultPlan::should_fire), so each graceful fault point doubles
    /// as a crash point; WAL ordering points additionally call
    /// `fault_fires(kCrash)` directly.
    kCrash = kNumSites,
};

constexpr std::size_t kNumFaultSites =
    static_cast<std::size_t>(FaultSite::kNumSites);

/// Thrown by FaultPlan::should_fire when an armed kCrash site fires:
/// simulated power loss, halting the world mid-op.  Harnesses catch it,
/// discard the torn world, and drive recovery from durable state (the
/// WAL, kernel/wal.h).  kCrash must not be armed sticky: stack unwinding
/// runs journal rollbacks whose undo closures cross fault points, and a
/// sticky crash would re-fire during unwind (std::terminate).
struct PowerLoss {
    std::uint64_t fires = 0;     ///< Total kCrash fires including this one.
    std::uint64_t crossing = 0;  ///< 1-based kCrash occurrence that fired.
};

/// Returns a short label for \p site (used in logs and bench JSON).
constexpr const char *
fault_site_name(FaultSite site)
{
    switch (site) {
      case FaultSite::kTlbEntryDrop: return "tlb_entry_drop";
      case FaultSite::kPteWriteDelay: return "pte_write_delay";
      case FaultSite::kPermRegWriteFail: return "perm_reg_write_fail";
      case FaultSite::kIpiDrop: return "ipi_drop";
      case FaultSite::kAsidExhaustion: return "asid_exhaustion";
      case FaultSite::kVdsAllocFail: return "vds_alloc_fail";
      case FaultSite::kVdtAllocFail: return "vdt_alloc_fail";
      case FaultSite::kVdrExhausted: return "vdr_exhausted";
      case FaultSite::kGateEntryDenied: return "gate_entry_denied";
      case FaultSite::kCrash: return "crash";  // == kNumSites
    }
    return "?";
}

/// Trigger for one armed site.  Both triggers may be combined; a site
/// fires when either says so, subject to the \p max_fires budget.
struct FaultSpec {
    double probability = 0.0;  ///< Chance each occurrence fires.
    std::uint64_t every = 0;   ///< Fire every Nth occurrence (0 = off).
    std::uint64_t skip = 0;    ///< Occurrences to pass before arming.
    std::uint64_t max_fires =
        std::numeric_limits<std::uint64_t>::max();  ///< Fire budget.
};

/// An armed set of fault sites driven by one seeded RNG.
///
/// Determinism: the RNG is consumed once per occurrence of a
/// probability-armed site, in program order, so identical workloads
/// produce identical fire sequences.  Occurrences of unarmed sites are
/// not counted and consume nothing.
class FaultPlan {
  public:
    explicit FaultPlan(std::uint64_t seed = 1) : rng_(seed), seed_(seed) {}

    void
    arm(FaultSite site, const FaultSpec &spec)
    {
        SiteState &st = state(site);
        st.spec = spec;
        st.armed = true;
    }

    void disarm(FaultSite site) { state(site).armed = false; }

    // --- systematic sweep arming (deterministic, no RNG) -----------------
    //
    // The sweep oracle (sim/chaos.h) runs an op once with every site
    // probe-armed to count fault-point crossings N, then replays the op N
    // times firing exactly at crossing k.  Neither mode consumes the RNG
    // (probability stays 0), so the sweep is bit-reproducible.

    /// Count-only: occurrences are tallied, nothing ever fires.
    void arm_probe(FaultSite site) { arm(site, FaultSpec{}); }

    /// Fires exactly at the \p k-th occurrence (1-based).  With \p sticky,
    /// keeps firing at every occurrence from k on — models a persistent
    /// failure that defeats in-op retry loops.
    void
    arm_exact(FaultSite site, std::uint64_t k, bool sticky = false)
    {
        FaultSpec spec;
        spec.every = 1;
        spec.skip = k == 0 ? 0 : k - 1;
        if (!sticky)
            spec.max_fires = 1;
        arm(site, spec);
    }

    bool armed(FaultSite site) const { return state(site).armed; }

    /// The trigger spec last armed for \p site (meaningful while armed).
    const FaultSpec &spec(FaultSite site) const { return state(site).spec; }

    /// Decides whether the current occurrence of \p site fires.  Called
    /// from the injection sites via `fault_fires`; bumps
    /// telemetry::Metric::kFaultsInjected on fire.
    bool should_fire(FaultSite site);

    /// Occurrences seen while the site was armed.
    std::uint64_t
    occurrences(FaultSite site) const
    {
        return state(site).occurrences;
    }

    /// Times the site actually fired.
    std::uint64_t fires(FaultSite site) const { return state(site).fires; }

    std::uint64_t total_fires() const { return total_fires_; }

    /// Zeroes every occurrence/fire counter (the RNG keeps its stream).
    void
    reset_counts()
    {
        for (SiteState &st : sites_) {
            st.occurrences = 0;
            st.fires = 0;
        }
        total_fires_ = 0;
    }

    // --- per-shard plans (epoch-parallel engine) -------------------------
    //
    // Each shard of the parallel engine injects faults from a private
    // plan so workers never share the RNG: same armed specs, zeroed
    // counters, and a stream derived deterministically from the shard's
    // identity.  Shard 0 (salt 0) inherits the master's *current* RNG
    // state, so a single-shard epoch run consumes the exact stream the
    // serial engine would have.  After the run the engine folds every
    // shard's counters back with absorb().

    /// A private copy of this plan for the shard salted with \p salt.
    FaultPlan
    fork(std::uint64_t salt) const
    {
        FaultPlan shard(*this);
        shard.reset_counts();
        if (salt != 0)
            shard.rng_ = Rng(seed_ ^ (salt * 0x9e3779b97f4a7c15ULL));
        return shard;
    }

    /// Folds \p shard's occurrence/fire counters into this plan.  With
    /// \p adopt_rng (the salt-0 shard), also adopts its RNG position so a
    /// single-shard run leaves the master exactly where serial execution
    /// would have.
    void
    absorb(const FaultPlan &shard, bool adopt_rng = false)
    {
        for (std::size_t i = 0; i < sites_.size(); ++i) {
            sites_[i].occurrences += shard.sites_[i].occurrences;
            sites_[i].fires += shard.sites_[i].fires;
        }
        total_fires_ += shard.total_fires_;
        if (adopt_rng)
            rng_ = shard.rng_;
    }

  private:
    struct SiteState {
        FaultSpec spec;
        bool armed = false;
        std::uint64_t occurrences = 0;
        std::uint64_t fires = 0;
    };

    SiteState &
    state(FaultSite site)
    {
        return sites_[static_cast<std::size_t>(site)];
    }
    const SiteState &
    state(FaultSite site) const
    {
        return sites_[static_cast<std::size_t>(site)];
    }

    Rng rng_;
    std::uint64_t seed_;
    // +1: slot for kCrash, which aliases kNumSites and deliberately sits
    // outside the kNumFaultSites range swept by graceful-fault loops.
    std::array<SiteState, kNumFaultSites + 1> sites_;
    std::uint64_t total_fires_ = 0;
};

// -- Global hook (null by default, zero-cost when detached) ---------------

/// The attached plan, or nullptr.
FaultPlan *fault_sink();
void set_fault_sink(FaultPlan *plan);

/// True when the current occurrence of \p site must fail.  With no plan
/// attached this is a single pointer test and never touches simulated
/// time or the RNG.
inline bool
fault_fires(FaultSite site)
{
    if (FaultPlan *p = fault_sink())
        return p->should_fire(site);
    return false;
}

/// RAII attachment of a plan (restores the previous sink).
class ScopedFaults {
  public:
    explicit ScopedFaults(FaultPlan &plan) : previous_(fault_sink())
    {
        set_fault_sink(&plan);
    }
    ~ScopedFaults() { set_fault_sink(previous_); }

    ScopedFaults(const ScopedFaults &) = delete;
    ScopedFaults &operator=(const ScopedFaults &) = delete;

  private:
    FaultPlan *previous_;
};

}  // namespace vdom::sim
