/// \file
/// Chaos harness: randomized churn with an armed FaultPlan, checking the
/// DESIGN.md invariants after every operation.
///
/// The harness owns a full simulated world (machine + process + VdomSystem,
/// the same shape as tests/test_invariants.cc's World) and drives the op
/// mix of the invariant sweep — grant/revoke/pin/access plus domain
/// create/free and VDR churn — while injection sites fire underneath it.
/// It is gtest-free so both tests/test_chaos.cc and bench/chaos_stress.cc
/// can link it; violations are reported as data, not assertions.
///
/// Alongside the randomized harness lives its systematic sibling, the
/// fault-point sweep (SweepHarness): a deterministic script of public API
/// ops is probed once to count every fault-point crossing, then each
/// (op, site, k-th crossing) is replayed in a fresh world with the fault
/// fired exactly there.  Ops that fail with a graceful status must leave
/// the architectural snapshot (vdom/introspect.h) byte-identical — the
/// atomicity oracle for the undo journal (kernel/journal.h).

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/pmo.h"
#include "hw/machine.h"
#include "kernel/process.h"
#include "kernel/wal.h"
#include "sim/fault.h"
#include "telemetry/flightrec.h"
#include "vdom/api.h"

namespace vdom::sim {

/// One chaos run's shape.  Everything is seeded: two runs with the same
/// config produce bit-identical clocks, breakdowns and fault sequences.
struct ChaosConfig {
    hw::ArchKind arch = hw::ArchKind::kX86;
    std::size_t cores = 4;
    std::size_t threads = 4;
    std::size_t domains = 24;
    int ops = 500;
    std::uint64_t seed = 1;
    /// Sites to arm (fault decisions draw from a plan seeded with `seed`).
    std::vector<std::pair<FaultSite, FaultSpec>> faults;
    /// Flight-recorder budget per core ring (0 disables the recorder).
    std::size_t flight_per_core = 1024;
    /// When non-empty, the first invariant violation dumps a post-mortem
    /// bundle (telemetry/postmortem.h) to this path.
    std::string postmortem_path;
};

/// Outcome of one chaos run.
struct ChaosResult {
    std::uint64_t ops = 0;
    std::uint64_t faults_injected = 0;
    std::array<std::uint64_t, kNumFaultSites> occurrences_by_site{};
    std::array<std::uint64_t, kNumFaultSites> fires_by_site{};
    std::uint64_t ok_accesses = 0;
    std::uint64_t denied_accesses = 0;
    std::uint64_t transient_failures = 0;  ///< Graceful fault statuses seen.
    std::uint64_t invariant_checks = 0;
    std::uint64_t violations = 0;
    std::string first_violation;  ///< Empty when every check held.
    std::uint64_t flight_records = 0;  ///< Flight records seen by the run.
    std::uint64_t flows = 0;           ///< Causality ids handed out.
    bool postmortem_written = false;   ///< A violation bundle was dumped.
    hw::CycleBreakdown breakdown;
    hw::Cycles max_clock = 0;

    bool ok() const { return violations == 0; }
};

/// Builds the world fault-free, then runs the churn with faults armed.
class ChaosHarness {
  public:
    explicit ChaosHarness(const ChaosConfig &config);
    ~ChaosHarness();

    ChaosHarness(const ChaosHarness &) = delete;
    ChaosHarness &operator=(const ChaosHarness &) = delete;

    /// Runs the configured op count and returns the tally.  Callable once
    /// per harness (the world is consumed by the churn).
    ChaosResult run();

    hw::Machine &machine() { return *machine_; }
    kernel::Process &process() { return *proc_; }
    VdomSystem &system() { return *sys_; }
    const FaultPlan &plan() const { return plan_; }
    const telemetry::FlightRecorder &flight() const { return flight_; }

    /// Dumps a post-mortem bundle of the harness's current state (flight
    /// ring, introspect snapshot, attached metrics, fault plan) to \p path.
    /// Used for the forced terminal snapshot as well as violation bundles.
    bool export_postmortem(const std::string &path, const std::string &reason,
                           int op = -1) const;

  private:
    /// vdom_alloc + mmap + vdom_mprotect; false when the assignment was
    /// rejected (e.g. an injected VDT allocation failure).
    bool make_domain(std::uint64_t pages, bool frequent,
                     std::size_t core_id, VdomStatus *status);

    void check_invariants(ChaosResult &result, int op);
    void record_violation(ChaosResult &result, int op,
                          const std::string &what);

    ChaosConfig config_;
    hw::ArchParams params_;
    std::unique_ptr<hw::Machine> machine_;
    std::unique_ptr<kernel::Process> proc_;
    std::unique_ptr<VdomSystem> sys_;
    FaultPlan plan_;
    telemetry::FlightRecorder flight_;
    std::vector<kernel::Task *> tasks_;
    std::vector<std::pair<VdomId, hw::Vpn>> doms_;
};

// --- systematic fault-point sweep ----------------------------------------

/// Shape of one sweep.  Everything is derived from the seed; two runs with
/// the same config produce identical scripts, crossing counts and digests.
struct SweepConfig {
    hw::ArchKind arch = hw::ArchKind::kX86;
    std::size_t cores = 2;
    std::size_t threads = 2;
    std::size_t domains = 4;
    /// Seeded churn ops appended to the deterministic script prologue.
    int churn_ops = 12;
    std::uint64_t seed = 1;
    /// Also replay each crossing in sticky mode (the fault keeps firing
    /// from crossing k on), defeating in-op retry loops.  Pure-delay
    /// sites are exempt — sticky there changes no architectural outcome.
    bool sticky = true;
    /// Flight-recorder budget per core ring (0 disables the recorder).
    std::size_t flight_per_core = 256;
    /// When non-empty, the first violation dumps a post-mortem bundle.
    std::string postmortem_path;
};

/// Outcome of one sweep.
struct SweepResult {
    std::uint64_t script_ops = 0;      ///< Ops in the deterministic script.
    std::uint64_t fault_points = 0;    ///< Total (op, site, k) crossings.
    std::uint64_t injected_runs = 0;   ///< Fresh worlds replayed.
    std::uint64_t failed_ops = 0;      ///< Graceful fault statuses seen.
    std::uint64_t degraded_ops = 0;    ///< Fired, but the op still kOk.
    std::uint64_t rollbacks = 0;       ///< Journal rollbacks observed.
    std::uint64_t snapshot_checks = 0; ///< Before/after snapshot diffs.
    std::uint64_t invariant_checks = 0;
    std::uint64_t violations = 0;
    std::string first_violation;       ///< Empty when every check held.
    std::uint64_t digest = 0;          ///< Run fingerprint (determinism gate).
    bool postmortem_written = false;

    bool ok() const { return violations == 0; }
};

/// The exhaustive sweep driver: probe once, then one fresh world per
/// (op, site, k-th crossing[, sticky]) with the fault fired exactly there.
///
/// The oracle per injected run:
///   - a graceful fault status must leave the introspect snapshot
///     byte-identical to the pre-op snapshot (journal rolled back), and a
///     disarmed retry of the same op must succeed;
///   - a kOk under injection (delay/retry sites) must keep the DESIGN.md
///     invariants and the access-verdict policy;
///   - any other status, snapshot divergence, or invariant breach is a
///     violation, and the first one dumps a post-mortem bundle.
class SweepHarness {
  public:
    explicit SweepHarness(const SweepConfig &config);
    ~SweepHarness();

    SweepHarness(const SweepHarness &) = delete;
    SweepHarness &operator=(const SweepHarness &) = delete;

    /// Runs probe + injection passes and returns the tally.
    SweepResult run();

    const telemetry::FlightRecorder &flight() const { return flight_; }

  private:
    struct Op;
    struct World;

    std::vector<Op> make_script() const;
    std::unique_ptr<World> build_world() const;
    void prepare(World &w, const Op &op) const;
    VdomStatus perform(World &w, const Op &op, bool *verdict_ok) const;
    void run_injection(const std::vector<Op> &script, std::size_t i,
                       FaultSite site, std::uint64_t k, bool sticky,
                       SweepResult &result);
    void record_violation(SweepResult &result, World *world,
                          const FaultPlan *plan, const std::string &what);
    void fold(SweepResult &result, const std::string &line) const;

    SweepConfig config_;
    telemetry::FlightRecorder flight_;
};

// --- exhaustive crash-point recovery sweep -------------------------------

/// Shape of one crash sweep.  Everything derives from the seed; two runs
/// with the same config produce byte-identical digests.
struct CrashSweepConfig {
    hw::ArchKind arch = hw::ArchKind::kX86;
    std::size_t cores = 2;
    std::size_t threads = 2;
    std::size_t domains = 3;
    /// Seeded churn ops appended to the deterministic script prologue.
    int churn_ops = 8;
    std::uint64_t seed = 1;
    /// Flight-recorder budget per core ring (0 disables the recorder).
    std::size_t flight_per_core = 256;
    /// When non-empty, the first violation dumps a post-mortem bundle.
    std::string postmortem_path;
};

/// Outcome of one crash sweep.
struct CrashSweepResult {
    std::uint64_t script_ops = 0;     ///< Ops in the deterministic script.
    std::uint64_t crash_points = 0;   ///< Total kCrash crossings probed.
    std::uint64_t injected_runs = 0;  ///< Crash/reboot/recover cycles run.
    std::uint64_t recoveries = 0;     ///< Successful recovery passes.
    std::uint64_t replayed_ops = 0;   ///< Committed WAL ops redone.
    std::uint64_t torn_records = 0;   ///< Torn tail records truncated.
    std::uint64_t undone_ops = 0;     ///< Uncommitted durable undos.
    std::uint64_t pmo_checks = 0;     ///< PMO content-integrity checks.
    std::uint64_t snapshot_checks = 0;///< Durable-snapshot oracle diffs.
    std::uint64_t invariant_checks = 0;
    std::uint64_t violations = 0;
    std::string first_violation;      ///< Empty when every check held.
    std::uint64_t digest = 0;         ///< Run fingerprint (determinism gate).
    bool postmortem_written = false;

    bool ok() const { return violations == 0; }
};

/// The exhaustive crash-point sweep driver (the tentpole oracle for
/// kernel/wal.h + vdom/recovery.h).  A deterministic script of
/// WAL-covered ops — including secure-pool growth, sandbox_mprotect and
/// PMO attach/detach — is probed once with kCrash count-armed, recording
/// per-op crossing counts, golden durable snapshots and golden PMO sets.
/// Then for every (op, k-th crossing) a fresh world replays the prefix,
/// crashes exactly there (sim::PowerLoss), reboots into a second fresh
/// world and recovers from the surviving WAL + PmoStore.
///
/// The oracle per injected run:
///   - recovery must succeed with no replay divergence;
///   - the recovered durable snapshot must equal the golden snapshot at
///     the last committed op boundary — exactly golden[i] when the WAL
///     says op i committed, exactly golden[i-1] otherwise (atomicity:
///     nothing in between is ever observable);
///   - the PMO store must hold exactly the golden PMO set, every object
///     intact (torn attach content undone, interrupted detach redone);
///   - DESIGN.md invariants and the access-verdict policy must hold in
///     the recovered world;
/// and the first violation dumps a post-mortem bundle.
class CrashSweepHarness {
  public:
    explicit CrashSweepHarness(const CrashSweepConfig &config);
    ~CrashSweepHarness();

    CrashSweepHarness(const CrashSweepHarness &) = delete;
    CrashSweepHarness &operator=(const CrashSweepHarness &) = delete;

    /// Runs probe + crash-injection passes and returns the tally.
    CrashSweepResult run();

    const telemetry::FlightRecorder &flight() const { return flight_; }

  private:
    struct Op;
    struct World;
    struct Golden;

    std::vector<Op> make_script() const;
    std::unique_ptr<World> build_world(kernel::Wal *wal) const;
    void prepare(World &w, const Op &op) const;
    /// Non-const: PMO ops write through the harness-owned durable store.
    VdomStatus perform(World &w, const Op &op, bool *verdict_ok);
    void run_injection(const std::vector<Op> &script,
                       const std::vector<Golden> &golden, std::size_t i,
                       std::uint64_t k, CrashSweepResult &result);
    void verify_recovered(World &w, const Golden &expect,
                          const std::string &label,
                          CrashSweepResult &result);
    void record_violation(CrashSweepResult &result, World *world,
                          const FaultPlan *plan, const std::string &what);
    void fold(CrashSweepResult &result, const std::string &line) const;

    CrashSweepConfig config_;
    telemetry::FlightRecorder flight_;
    /// The durable media: owned here (the "NVDIMM"), so they outlive
    /// every crashed world.  Reset before each injected run.
    kernel::Wal wal_;
    apps::PmoStore store_;
};

// --- application-workload chaos ------------------------------------------

/// Shape of one apps-under-chaos run: a full application model (httpd,
/// MySQL or the PMO string-replace benchmark) driven under the VDom
/// strategy with graceful fault sites armed underneath it.
struct ChaosAppsConfig {
    hw::ArchKind arch = hw::ArchKind::kX86;
    enum class Workload : std::uint8_t { kHttpd, kMysql, kPmo };
    Workload workload = Workload::kHttpd;
    std::size_t cores = 4;
    /// Workload size knob: requests (httpd), queries (MySQL) or ops per
    /// thread (PMO).  Small defaults keep the regression test fast.
    std::size_t work_items = 200;
    std::size_t clients = 8;  ///< Clients / connections / threads.
    std::uint64_t seed = 1;
    /// Host worker threads for the engine (>= 2 = epoch-parallel mode;
    /// digests stay byte-identical across any value).
    std::size_t host_threads = 1;
    /// Sites to arm (graceful sites only — the app models retry through
    /// transient statuses; kCrash needs the CrashSweepHarness).
    std::vector<std::pair<FaultSite, FaultSpec>> faults;
};

/// Outcome of one apps-under-chaos run.
struct ChaosAppsResult {
    std::uint64_t completed = 0;        ///< Work items finished.
    std::uint64_t faults_injected = 0;  ///< Fault-site fires underneath.
    std::uint64_t invariant_checks = 0;
    std::uint64_t violations = 0;
    std::string first_violation;        ///< Empty when every check held.
    hw::Cycles elapsed = 0;

    bool ok() const { return violations == 0; }
};

/// Runs \p config's workload with the configured fault plan armed and
/// checks the DESIGN.md structural invariants over the final world.  The
/// app models drive the public API through apps::VdomStrategy, so armed
/// graceful sites exercise their retry/degradation paths at scale.
ChaosAppsResult run_chaos_apps(const ChaosAppsConfig &config);

}  // namespace vdom::sim
