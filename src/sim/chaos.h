/// \file
/// Chaos harness: randomized churn with an armed FaultPlan, checking the
/// DESIGN.md invariants after every operation.
///
/// The harness owns a full simulated world (machine + process + VdomSystem,
/// the same shape as tests/test_invariants.cc's World) and drives the op
/// mix of the invariant sweep — grant/revoke/pin/access plus domain
/// create/free and VDR churn — while injection sites fire underneath it.
/// It is gtest-free so both tests/test_chaos.cc and bench/chaos_stress.cc
/// can link it; violations are reported as data, not assertions.

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "hw/machine.h"
#include "kernel/process.h"
#include "sim/fault.h"
#include "telemetry/flightrec.h"
#include "vdom/api.h"

namespace vdom::sim {

/// One chaos run's shape.  Everything is seeded: two runs with the same
/// config produce bit-identical clocks, breakdowns and fault sequences.
struct ChaosConfig {
    hw::ArchKind arch = hw::ArchKind::kX86;
    std::size_t cores = 4;
    std::size_t threads = 4;
    std::size_t domains = 24;
    int ops = 500;
    std::uint64_t seed = 1;
    /// Sites to arm (fault decisions draw from a plan seeded with `seed`).
    std::vector<std::pair<FaultSite, FaultSpec>> faults;
    /// Flight-recorder budget per core ring (0 disables the recorder).
    std::size_t flight_per_core = 1024;
    /// When non-empty, the first invariant violation dumps a post-mortem
    /// bundle (telemetry/postmortem.h) to this path.
    std::string postmortem_path;
};

/// Outcome of one chaos run.
struct ChaosResult {
    std::uint64_t ops = 0;
    std::uint64_t faults_injected = 0;
    std::array<std::uint64_t, kNumFaultSites> occurrences_by_site{};
    std::array<std::uint64_t, kNumFaultSites> fires_by_site{};
    std::uint64_t ok_accesses = 0;
    std::uint64_t denied_accesses = 0;
    std::uint64_t transient_failures = 0;  ///< Graceful fault statuses seen.
    std::uint64_t invariant_checks = 0;
    std::uint64_t violations = 0;
    std::string first_violation;  ///< Empty when every check held.
    std::uint64_t flight_records = 0;  ///< Flight records seen by the run.
    std::uint64_t flows = 0;           ///< Causality ids handed out.
    bool postmortem_written = false;   ///< A violation bundle was dumped.
    hw::CycleBreakdown breakdown;
    hw::Cycles max_clock = 0;

    bool ok() const { return violations == 0; }
};

/// Builds the world fault-free, then runs the churn with faults armed.
class ChaosHarness {
  public:
    explicit ChaosHarness(const ChaosConfig &config);
    ~ChaosHarness();

    ChaosHarness(const ChaosHarness &) = delete;
    ChaosHarness &operator=(const ChaosHarness &) = delete;

    /// Runs the configured op count and returns the tally.  Callable once
    /// per harness (the world is consumed by the churn).
    ChaosResult run();

    hw::Machine &machine() { return *machine_; }
    kernel::Process &process() { return *proc_; }
    VdomSystem &system() { return *sys_; }
    const FaultPlan &plan() const { return plan_; }
    const telemetry::FlightRecorder &flight() const { return flight_; }

    /// Dumps a post-mortem bundle of the harness's current state (flight
    /// ring, introspect snapshot, attached metrics, fault plan) to \p path.
    /// Used for the forced terminal snapshot as well as violation bundles.
    bool export_postmortem(const std::string &path, const std::string &reason,
                           int op = -1) const;

  private:
    /// vdom_alloc + mmap + vdom_mprotect; false when the assignment was
    /// rejected (e.g. an injected VDT allocation failure).
    bool make_domain(std::uint64_t pages, bool frequent,
                     std::size_t core_id, VdomStatus *status);

    void check_invariants(ChaosResult &result, int op);
    void record_violation(ChaosResult &result, int op,
                          const std::string &what);

    ChaosConfig config_;
    hw::ArchParams params_;
    std::unique_ptr<hw::Machine> machine_;
    std::unique_ptr<kernel::Process> proc_;
    std::unique_ptr<VdomSystem> sys_;
    FaultPlan plan_;
    telemetry::FlightRecorder flight_;
    std::vector<kernel::Task *> tasks_;
    std::vector<std::pair<VdomId, hw::Vpn>> doms_;
};

}  // namespace vdom::sim
