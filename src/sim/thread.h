/// \file
/// Workload thread interface for the discrete-event engine.

#pragma once

#include "hw/core.h"
#include "kernel/process.h"
#include "kernel/task.h"

namespace vdom::sim {

/// One simulated application thread.
///
/// Workloads implement step(): perform one logical unit of work (one
/// request, one protected operation, ...), charging cycles on the core
/// they were handed.  The engine interleaves threads in causal
/// (minimum-local-time) order, so cross-thread effects — contended
/// domains, busy waiting, shootdown latency — emerge from the schedule.
class SimThread {
  public:
    virtual ~SimThread() = default;

    /// Performs one unit of work on \p core.
    /// \returns false when the thread has finished.
    virtual bool step(hw::Core &core) = 0;

    /// The kernel task this thread runs as (for context switching);
    /// may be null for bare-metal microbenchmark loops.
    kernel::Task *task() const { return task_; }
    void set_task(kernel::Task *task) { task_ = task; }

    /// The process the task belongs to.  Optional: when set, the engine
    /// context-switches through it instead of the engine-wide default,
    /// which lets threads of several processes share one machine.
    kernel::Process *process() const { return process_; }
    void
    set_task(kernel::Process &process, kernel::Task *task)
    {
        process_ = &process;
        task_ = task;
    }

    /// Called from step() when the thread has nothing to do (blocked in
    /// accept(), waiting for work): the engine deschedules it in favour of
    /// the next runnable thread on the core instead of letting it burn the
    /// rest of its time slice.
    void yield() { yielded_ = true; }

    /// Engine-side: consumes the yield flag.
    bool
    take_yield()
    {
        bool y = yielded_;
        yielded_ = false;
        return y;
    }

  private:
    kernel::Task *task_ = nullptr;
    kernel::Process *process_ = nullptr;
    bool yielded_ = false;
};

}  // namespace vdom::sim
