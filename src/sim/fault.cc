/// \file
/// Fault-injection engine implementation.

#include "sim/fault.h"

namespace vdom::sim {

namespace {
FaultPlan *g_fault_sink = nullptr;
}  // namespace

FaultPlan *
fault_sink()
{
    return g_fault_sink;
}

void
set_fault_sink(FaultPlan *plan)
{
    g_fault_sink = plan;
}

bool
FaultPlan::should_fire(FaultSite site)
{
    SiteState &st = state(site);
    if (!st.armed)
        return false;
    ++st.occurrences;
    if (st.occurrences <= st.spec.skip)
        return false;
    // The RNG is consumed for every post-skip occurrence of a
    // probability-armed site — including over-budget ones — so the stream
    // position depends only on the workload, not on earlier outcomes.
    bool fire = false;
    if (st.spec.probability > 0.0 && rng_.uniform() < st.spec.probability)
        fire = true;
    if (st.spec.every != 0 &&
        (st.occurrences - st.spec.skip) % st.spec.every == 0) {
        fire = true;
    }
    if (!fire || st.fires >= st.spec.max_fires)
        return false;
    ++st.fires;
    ++total_fires_;
    telemetry::metric_add(telemetry::Metric::kFaultsInjected);
    return true;
}

}  // namespace vdom::sim
