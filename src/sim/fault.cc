/// \file
/// Fault-injection engine implementation.

#include "sim/fault.h"

namespace vdom::sim {

namespace {
thread_local FaultPlan *g_fault_sink = nullptr;
}  // namespace

FaultPlan *
fault_sink()
{
    return g_fault_sink;
}

void
set_fault_sink(FaultPlan *plan)
{
    g_fault_sink = plan;
}

bool
FaultPlan::should_fire(FaultSite site)
{
    // Power loss piggybacks on every other site's crossing: with kCrash
    // armed, each fault point anywhere in the system is also a potential
    // crash point, so the crash sweep enumerates them without touching a
    // single call site.  Guarded on armed so unarmed runs see one extra
    // predictable branch and nothing else (no counters, no RNG).
    if (site != FaultSite::kCrash && state(FaultSite::kCrash).armed)
        (void)should_fire(FaultSite::kCrash);
    SiteState &st = state(site);
    if (!st.armed)
        return false;
    ++st.occurrences;
    if (st.occurrences <= st.spec.skip)
        return false;
    // The RNG is consumed for every post-skip occurrence of a
    // probability-armed site — including over-budget ones — so the stream
    // position depends only on the workload, not on earlier outcomes.
    bool fire = false;
    if (st.spec.probability > 0.0 && rng_.uniform() < st.spec.probability)
        fire = true;
    if (st.spec.every != 0 &&
        (st.occurrences - st.spec.skip) % st.spec.every == 0) {
        fire = true;
    }
    if (!fire || st.fires >= st.spec.max_fires)
        return false;
    ++st.fires;
    ++total_fires_;
    telemetry::metric_add(telemetry::Metric::kFaultsInjected);
    // kCrash is fail-stop: halt the world after the fire is booked, so a
    // post-mortem of the caught PowerLoss still sees accurate counters.
    if (site == FaultSite::kCrash)
        throw PowerLoss{st.fires, st.occurrences};
    return true;
}

}  // namespace vdom::sim
