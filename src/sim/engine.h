/// \file
/// Deterministic discrete-event multicore engine.

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "hw/machine.h"
#include "kernel/process.h"
#include "sim/thread.h"

namespace vdom::sim {

/// Runs SimThreads over the simulated machine.
///
/// Scheduling model:
///  - threads are pinned to cores (§6.3: VDom binds threads to cores);
///    multiple threads per core time-share with a configurable slice and
///    pay context-switch costs through the kernel Process;
///  - the engine always advances the runnable core with the minimum local
///    clock (ties broken by core id), which yields a causally consistent,
///    fully deterministic interleaving.
class Engine {
  public:
    /// \param proc kernel process used for context-switch accounting; may
    ///        be null for bare microbenchmarks (no switch costs charged).
    /// \param time_slice preemption quantum in cycles.
    Engine(hw::Machine &machine, kernel::Process *proc = nullptr,
           hw::Cycles time_slice = 1'000'000)
        : machine_(&machine),
          proc_(proc),
          time_slice_(time_slice),
          queues_(machine.num_cores()),
          slice_start_(machine.num_cores(), 0)
    {
    }

    /// Adds \p thread pinned to \p core (or round-robin when < 0).
    void
    add_thread(SimThread *thread, int core = -1)
    {
        std::size_t c = core >= 0
            ? static_cast<std::size_t>(core) % machine_->num_cores()
            : next_core_++ % machine_->num_cores();
        queues_[c].push_back(thread);
        ++live_threads_;
    }

    /// Runs until every thread finishes.
    void
    run()
    {
        while (live_threads_ > 0)
            step_once();
    }

    /// Runs until every thread finishes or the minimum runnable clock
    /// passes \p deadline.
    void
    run_until(hw::Cycles deadline)
    {
        while (live_threads_ > 0) {
            std::size_t c = pick_core();
            if (machine_->core(c).now() >= deadline)
                return;
            step_core(c);
        }
    }

    std::size_t live_threads() const { return live_threads_; }

    std::uint64_t context_switches() const { return context_switches_; }

    /// Total thread steps executed (diagnostics / livelock detection).
    std::uint64_t steps() const { return steps_; }

  private:
    std::size_t
    pick_core()
    {
        std::size_t best = 0;
        hw::Cycles best_clock = 0;
        bool found = false;
        for (std::size_t c = 0; c < queues_.size(); ++c) {
            if (queues_[c].empty())
                continue;
            hw::Cycles clock = machine_->core(c).now();
            if (!found || clock < best_clock) {
                best = c;
                best_clock = clock;
                found = true;
            }
        }
        return best;
    }

    void
    step_once()
    {
        step_core(pick_core());
    }

    void
    step_core(std::size_t c)
    {
        ++steps_;
        auto &queue = queues_[c];
        hw::Core &core = machine_->core(c);
        // Preempt when the slice expired and another thread waits.
        if (queue.size() > 1 &&
            core.now() - slice_start_[c] >= time_slice_) {
            queue.push_back(queue.front());
            queue.pop_front();
            switch_in(core, *queue.front());
            slice_start_[c] = core.now();
        }
        SimThread *thread = queue.front();
        ensure_installed(core, *thread);
        if (!thread->step(core)) {
            queue.pop_front();
            --live_threads_;
            if (!queue.empty()) {
                switch_in(core, *queue.front());
                slice_start_[c] = core.now();
            }
            return;
        }
        // A yielding thread (blocked waiting for work) is descheduled in
        // favour of the next runnable thread on this core.
        if (thread->take_yield() && queue.size() > 1) {
            queue.push_back(queue.front());
            queue.pop_front();
            switch_in(core, *queue.front());
            slice_start_[c] = core.now();
        }
    }

    void
    switch_in(hw::Core &core, SimThread &thread)
    {
        ++context_switches_;
        kernel::Process *proc = process_for(thread);
        if (proc && thread.task())
            proc->switch_to(core, *thread.task());
        installed_[core.id()] = &thread;
    }

    /// The process to context-switch through: the thread's own when set
    /// (multi-process machines), else the engine-wide default.
    kernel::Process *
    process_for(SimThread &thread) const
    {
        return thread.process() ? thread.process() : proc_;
    }

    /// First run of a thread on its core installs its address space
    /// without charging a context switch.
    void
    ensure_installed(hw::Core &core, SimThread &thread)
    {
        if (installed_.size() != machine_->num_cores())
            installed_.resize(machine_->num_cores(), nullptr);
        if (installed_[core.id()] == &thread)
            return;
        kernel::Process *proc = process_for(thread);
        if (proc && thread.task())
            proc->switch_to(core, *thread.task(),
                            installed_[core.id()] != nullptr);
        installed_[core.id()] = &thread;
    }

    hw::Machine *machine_;
    kernel::Process *proc_;
    hw::Cycles time_slice_;
    std::vector<std::deque<SimThread *>> queues_;
    std::vector<hw::Cycles> slice_start_;
    std::vector<SimThread *> installed_;
    std::size_t next_core_ = 0;
    std::size_t live_threads_ = 0;
    std::uint64_t context_switches_ = 0;
    std::uint64_t steps_ = 0;
};

}  // namespace vdom::sim
