/// \file
/// Deterministic discrete-event multicore engine.
///
/// Two execution modes share one scheduling model (threads pinned to
/// cores, min-clock core order, slice preemption through the kernel
/// Process):
///
///  - serial (default, host_threads <= 1): one host thread advances the
///    runnable core with the minimum local clock, exactly the historical
///    engine.  Scheduling uses a lazy min-heap keyed by (clock, core id),
///    so large simulated machines no longer pay an O(num_cores) scan per
///    step.
///
///  - epoch-parallel (set_host_threads(n >= 2)): cores are grouped into
///    *shards* — the union-find closure of cores coupled by a shared
///    kernel process — and host workers advance whole shards
///    independently up to an epoch horizon (min runnable clock + the
///    quantum).  Within a shard execution is the exact serial min-clock
///    loop; across shards, workers stage telemetry into per-shard buffers
///    and defer cross-shard effects (sim/exec_context.h), and the main
///    thread drains both at the epoch barrier in shard-index order.  The
///    result is byte-identical for every host thread count — and, for
///    single-shard workloads (one process, every core populated),
///    byte-identical to the serial engine.
///
/// See docs/INTERNALS.md ("Parallel engine & epoch barriers").

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "hw/machine.h"
#include "kernel/process.h"
#include "sim/thread.h"

namespace vdom::sim {

/// Runs SimThreads over the simulated machine.
///
/// Scheduling model:
///  - threads are pinned to cores (§6.3: VDom binds threads to cores);
///    multiple threads per core time-share with a configurable slice and
///    pay context-switch costs through the kernel Process;
///  - the engine always advances the runnable core with the minimum local
///    clock (ties broken by core id), which yields a causally consistent,
///    fully deterministic interleaving.
class Engine {
  public:
    /// \param proc kernel process used for context-switch accounting; may
    ///        be null for bare microbenchmarks (no switch costs charged).
    /// \param time_slice preemption quantum in cycles.
    Engine(hw::Machine &machine, kernel::Process *proc = nullptr,
           hw::Cycles time_slice = 1'000'000);
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /// Adds \p thread pinned to \p core (or round-robin when < 0).
    void add_thread(SimThread *thread, int core = -1);

    /// Selects the execution mode: <= 1 keeps the serial engine (the
    /// default); n >= 2 runs epoch-parallel with n host worker threads
    /// (capped at the shard count — extra workers would idle).
    void set_host_threads(std::size_t n) { host_threads_ = n ? n : 1; }
    std::size_t host_threads() const { return host_threads_; }

    /// Epoch horizon step for the parallel mode, in simulated cycles.
    /// Smaller quanta mean tighter cross-shard coupling (more barriers);
    /// results are byte-identical for any value.
    void set_epoch_quantum(hw::Cycles quantum) { quantum_ = quantum; }
    hw::Cycles epoch_quantum() const { return quantum_; }

    /// Runs until every thread finishes.
    void run();

    /// Runs until every thread finishes or the minimum runnable clock
    /// passes \p deadline.
    void run_until(hw::Cycles deadline);

    std::size_t live_threads() const { return live_threads_; }

    std::uint64_t context_switches() const { return context_switches_; }

    /// Total thread steps executed (diagnostics / livelock detection).
    std::uint64_t steps() const { return steps_; }

    /// Epoch barriers executed (0 after serial runs).
    std::uint64_t epochs() const { return epochs_; }

    /// Number of independent shards the current thread placement yields
    /// (recomputed on demand; diagnostics and tests).
    std::size_t shard_count();

  private:
    struct Shard;  ///< Epoch-parallel per-shard state (engine.cc).
    struct Pool;   ///< Host worker pool (engine.cc).

    /// Lazy min-heap entry: a (clock, core) snapshot.  Entries go stale
    /// when the core steps or its queue drains; pick_core() skips and
    /// refreshes them.
    struct HeapEntry {
        hw::Cycles clock;
        std::size_t core;
    };

    // --- serial path ------------------------------------------------------
    std::size_t pick_core();
    void rebuild_heap();
    void step_once();
    bool step_core(std::size_t c, std::size_t &live, std::uint64_t &steps,
                   std::uint64_t &switches);
    void switch_in(hw::Core &core, SimThread &thread,
                   std::uint64_t &switches);
    kernel::Process *process_for(SimThread &thread) const;
    void ensure_installed(hw::Core &core, SimThread &thread);

    // --- epoch-parallel path ----------------------------------------------
    void compute_shards();
    void prepare_epoch_state();
    void finish_epoch_state();
    void run_epochs(hw::Cycles deadline);
    void run_shard_until(Shard &shard, hw::Cycles horizon);
    hw::Cycles min_runnable_clock() const;
    void drain_shard(Shard &shard);
    void apply_deferred(Shard &shard);
    std::uint64_t remap_flow(Shard &shard, std::uint64_t staged);

    hw::Machine *machine_;
    kernel::Process *proc_;
    hw::Cycles time_slice_;
    std::vector<std::deque<SimThread *>> queues_;
    std::vector<hw::Cycles> slice_start_;
    std::vector<SimThread *> installed_;
    std::size_t next_core_ = 0;
    std::size_t live_threads_ = 0;
    std::uint64_t context_switches_ = 0;
    std::uint64_t steps_ = 0;

    std::vector<HeapEntry> heap_;
    bool heap_stale_ = true;

    std::size_t host_threads_ = 1;
    hw::Cycles quantum_ = 1'000'000;
    std::uint64_t epochs_ = 0;
    bool shards_stale_ = true;
    std::vector<std::unique_ptr<Shard>> shards_;
    telemetry::FlightRecorder *real_flight_ = nullptr;
    Tracer *real_trace_ = nullptr;
    telemetry::SpanTracer *real_span_ = nullptr;
    FaultPlan *real_fault_ = nullptr;
};

}  // namespace vdom::sim
