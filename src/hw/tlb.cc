/// \file
/// TLB model implementation.

#include "hw/tlb.h"

#include "sim/fault.h"
#include "telemetry/metrics.h"

namespace vdom::hw {

namespace tm = ::vdom::telemetry;

std::optional<TlbEntry>
Tlb::lookup(Asid asid, Vpn vpn)
{
    auto it = map_.find(make_key(asid, vpn));
    if (it != map_.end() &&
        sim::fault_fires(sim::FaultSite::kTlbEntryDrop)) {
        // Injected spurious invalidation: the entry vanishes and the
        // lookup misses; the subsequent page-table walk re-fills it.
        lru_.erase(it->second);
        map_.erase(it);
        it = map_.end();
        ++stats_.fault_drops;
    }
    if (it == map_.end()) {
        ++stats_.misses;
        tm::metric_add(tm::Metric::kTlbMiss, 1, owner_);
        return std::nullopt;
    }
    ++stats_.hits;
    tm::metric_add(tm::Metric::kTlbHit, 1, owner_);
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->entry;
}

void
Tlb::insert(Asid asid, Vpn vpn, const TlbEntry &entry)
{
    Key key = make_key(asid, vpn);
    auto it = map_.find(key);
    if (it != map_.end()) {
        it->second->entry = entry;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (map_.size() >= capacity_ && !lru_.empty()) {
        map_.erase(lru_.back().key);
        lru_.pop_back();
        ++stats_.evictions;
        tm::metric_add(tm::Metric::kTlbEvict, 1, owner_);
    }
    lru_.push_front(Node{key, entry});
    map_[key] = lru_.begin();
}

void
Tlb::flush_all()
{
    ++stats_.flushes_all;
    tm::metric_add(tm::Metric::kTlbFlush, 1, owner_);
    lru_.clear();
    map_.clear();
}

void
Tlb::flush_asid(Asid asid)
{
    ++stats_.flushes_asid;
    tm::metric_add(tm::Metric::kTlbFlush, 1, owner_);
    for (auto it = lru_.begin(); it != lru_.end();) {
        if ((it->key >> 48) == asid) {
            map_.erase(it->key);
            it = lru_.erase(it);
        } else {
            ++it;
        }
    }
}

std::uint64_t
Tlb::flush_range(Asid asid, Vpn vpn, std::uint64_t count)
{
    std::uint64_t touched = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        auto it = map_.find(make_key(asid, vpn + i));
        if (it != map_.end()) {
            lru_.erase(it->second);
            map_.erase(it);
            ++touched;
        }
    }
    stats_.flushed_pages += touched;
    if (touched)
        tm::metric_add(tm::Metric::kTlbFlushedPages, touched, owner_);
    return touched;
}

}  // namespace vdom::hw
