/// \file
/// TLB model implementation: flat set-associative array with exact per-set
/// LRU, indexed by an open-addressing hash table (no per-entry allocation
/// on any path).

#include "hw/tlb.h"

#include <algorithm>
#include <bit>

#include "sim/fault.h"
#include "telemetry/metrics.h"

namespace vdom::hw {

namespace tm = ::vdom::telemetry;

Tlb::Tlb(std::size_t capacity, std::size_t owner, std::size_t ways)
    : capacity_(capacity), owner_(owner)
{
    std::size_t effective = capacity == 0 ? 1 : capacity;
    if (ways == 0 || ways >= effective) {
        // Fully associative: one set, global exact LRU (the default — the
        // eviction order the paper-reproduction results were produced
        // with).
        num_sets_ = 1;
        ways_ = effective;
    } else {
        num_sets_ = std::bit_floor(effective / ways);
        if (num_sets_ == 0)
            num_sets_ = 1;
        ways_ = effective / num_sets_;
    }
    slot_count_ = num_sets_ * ways_;
    slots_.resize(slot_count_);
    free_head_ = 0;
    for (std::size_t i = 0; i + 1 < slot_count_; ++i)
        slots_[i].next = static_cast<std::uint32_t>(i + 1);
    slots_[slot_count_ - 1].next = kNil;
    set_head_.assign(num_sets_, kNil);
    set_tail_.assign(num_sets_, kNil);
    set_size_.assign(num_sets_, 0);
    std::size_t index_size = std::bit_ceil(std::max<std::size_t>(
        std::size_t{8}, slot_count_ * 2));
    index_.assign(index_size, Cell{});
    index_mask_ = index_size - 1;
    hash_shift_ = 64 - static_cast<unsigned>(std::bit_width(index_size) - 1);
}

void
Tlb::index_insert(Key key, std::uint32_t slot)
{
    std::size_t pos = ideal_pos(key);
    while (index_[pos].slot != kNil)
        pos = (pos + 1) & index_mask_;
    index_[pos] = Cell{key, slot};
}

void
Tlb::index_erase(Key key)
{
    std::size_t pos = ideal_pos(key);
    while (true) {
        Cell &cell = index_[pos];
        if (cell.slot == kNil)
            return;  // Not present (caller guarantees it is; be safe).
        if (cell.key == key)
            break;
        pos = (pos + 1) & index_mask_;
    }
    // Backward-shift deletion (Knuth 6.4, algorithm R): keep probe chains
    // contiguous without tombstones.
    std::size_t hole = pos;
    index_[hole].slot = kNil;
    std::size_t probe = hole;
    while (true) {
        probe = (probe + 1) & index_mask_;
        if (index_[probe].slot == kNil)
            return;
        std::size_t home = ideal_pos(index_[probe].key);
        // Move the cell into the hole when its home position lies
        // cyclically outside (hole, probe].
        bool movable = (probe > hole)
            ? (home <= hole || home > probe)
            : (home <= hole && home > probe);
        if (movable) {
            index_[hole] = index_[probe];
            index_[probe].slot = kNil;
            hole = probe;
        }
    }
}

void
Tlb::remove_slot(std::uint32_t slot)
{
    Slot &s = slots_[slot];
    index_erase(s.key);
    list_unlink(slot);
    --set_size_[s.set];
    --size_;
    s.used = false;
    s.prev = kNil;
    s.next = free_head_;
    free_head_ = slot;
}

void
Tlb::insert(Asid asid, Vpn vpn, const TlbEntry &entry)
{
    Key key = make_key(asid, vpn);
    std::uint32_t slot = index_find(key);
    if (slot != kNil) {
        slots_[slot].entry = entry;
        touch_front(slot);
        return;
    }
    std::size_t set = set_of(key);
    if (set_size_[set] >= ways_) {
        std::uint32_t victim = set_tail_[set];
        ++stats_.evictions;
        tm::metric_add(tm::Metric::kTlbEvict, 1, owner_);
        if (size_ < slot_count_) {
            ++stats_.assoc_conflicts;
            tm::metric_add(tm::Metric::kTlbAssocConflict, 1, owner_);
        }
        remove_slot(victim);
    }
    std::uint32_t fresh = free_head_;
    free_head_ = slots_[fresh].next;
    Slot &s = slots_[fresh];
    s.key = key;
    s.set = static_cast<std::uint32_t>(set);
    s.entry = entry;
    s.used = true;
    list_push_front(fresh);
    ++set_size_[set];
    ++size_;
    index_insert(key, fresh);
}

void
Tlb::flush_all()
{
    ++stats_.flushes_all;
    tm::metric_add(tm::Metric::kTlbFlush, 1, owner_);
    if (size_ == 0)
        return;
    std::fill(index_.begin(), index_.end(), Cell{});
    for (std::size_t i = 0; i < slot_count_; ++i) {
        slots_[i].used = false;
        slots_[i].prev = kNil;
        slots_[i].next =
            i + 1 < slot_count_ ? static_cast<std::uint32_t>(i + 1) : kNil;
    }
    free_head_ = 0;
    std::fill(set_head_.begin(), set_head_.end(), kNil);
    std::fill(set_tail_.begin(), set_tail_.end(), kNil);
    std::fill(set_size_.begin(), set_size_.end(), 0);
    size_ = 0;
}

void
Tlb::flush_asid(Asid asid)
{
    ++stats_.flushes_asid;
    tm::metric_add(tm::Metric::kTlbFlush, 1, owner_);
    for (std::uint32_t i = 0; i < slot_count_; ++i) {
        if (slots_[i].used && (slots_[i].key >> 48) == asid)
            remove_slot(i);
    }
}

std::uint64_t
Tlb::flush_range(Asid asid, Vpn vpn, std::uint64_t count)
{
    std::uint64_t touched = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint32_t slot = index_find(make_key(asid, vpn + i));
        if (slot != kNil) {
            remove_slot(slot);
            ++touched;
        }
    }
    stats_.flushed_pages += touched;
    if (touched)
        tm::metric_add(tm::Metric::kTlbFlushedPages, touched, owner_);
    return touched;
}

}  // namespace vdom::hw
