/// \file
/// Calibrated architecture descriptors.
///
/// Calibration method: the paper's Table 3 gives end-to-end cycle counts for
/// composite operations (e.g. "secure wrvdr with 2MB eviction" = 1,605
/// cycles on X86).  We decompose each composite into the architectural
/// events our simulator charges (syscall entry, PTE/PMD updates, TLB
/// flushes, ...) and solve for per-event constants.  The Table 3 / Table 4
/// reproductions then *measure* these composites back out of the simulator;
/// EXPERIMENTS.md records paper-vs-measured for every row.

#include "hw/arch.h"

namespace vdom::hw {

const char *
arch_name(ArchKind kind)
{
    return kind == ArchKind::kX86 ? "X86" : "ARM";
}

CostTable
default_costs(ArchKind kind)
{
    if (kind == ArchKind::kX86) {
        CostTable c{};
        c.api_call = 6.7;            // Table 3: empty API call return.
        c.syscall = 173.4;           // Table 3: empty syscall return.
        c.perm_reg_write = 25.6;     // Table 3: update PKRU.
        c.perm_reg_read = 12.0;
        c.vdr_update = 10.0;
        c.perm_compute = 14.5;       // fast wrvdr = 6.7+10+14.5+12+25.6 = 68.8
        c.secure_gate = 35.2;        // secure wrvdr = 68.8+35.2 = 104.
        c.pte_update = 28.0;
        c.pmd_update = 104.7;        // solves 64MB evict = 8,097 (32 PMDs).
        c.pt_walk = 80.0;
        c.pgd_switch = 120.0;
        c.tlb_hit = 1.0;
        c.tlb_flush_all = 250.0;
        c.tlb_flush_asid = 25.0;     // INVPCID single-context issue cost; the
                                     // real price is later refills, which the
                                     // TLB model charges as misses.
        c.tlb_flush_page = 45.0;
        c.ipi_post = 400.0;
        c.ipi_wait = 600.0;
        c.ipi_handle = 500.0;
        c.evict_fixed = 1170.0;      // VDT walk + HLRU + domain-map update.
        c.vds_switch_fixed = 185.6;  // VDS switch = 104+173.4+120+185.6 = 583.
        c.vds_alloc = 800.0;
        c.migrate_fixed = 400.0;
        c.context_switch = 306.3;    // +pgd write = 426.3 plain switch_mm;
                                     // §7.5: VDom's is 451.9 = +6%.
        c.context_switch_vdom = 25.6;
        c.memsync_page = 150.0;
        c.fault_entry = 250.0;
        c.vmfunc_base = 169.0;       // Table 3 (from EPK / LVD reports).
        c.vmfunc_mid = 350.0;        // §7.4: inserted per VMFUNC switch.
        c.vmfunc_many = 830.0;
        c.pkey_set = 102.0;          // Table 4: libmpk seq, <=15 vdoms.
        c.mprotect_base = 250.0;
        c.busy_wait_spin = 200.0;
        c.wal_append = 90.0;         // NVDIMM-style cacheline persist (CLWB).
        c.wal_flush = 450.0;         // SFENCE + ADR drain ordering point.
        return c;
    }
    CostTable c{};
    c.api_call = 16.5;               // Table 3 ARM column.
    c.syscall = 268.3;
    c.perm_reg_write = 18.1;         // DACR write (privileged).
    c.perm_reg_read = 9.0;
    c.vdr_update = 40.0;
    c.perm_compute = 63.1;           // wrvdr = 16.5+268.3+40+63.1+18.1 = 406.
    c.secure_gate = 0.0;             // ARM API is syscall-gated; no user gate.
    c.pte_update = 60.0;
    c.pmd_update = 139.0;            // solves 64MB evict ~ 11,778.
    c.pt_walk = 140.0;
    c.pgd_switch = 130.0;
    c.tlb_hit = 1.0;
    c.tlb_flush_all = 600.0;
    c.tlb_flush_asid = 300.0;        // TLBIASID + barriers on Cortex-A53.
    c.tlb_flush_page = 80.0;
    c.ipi_post = 700.0;
    c.ipi_wait = 900.0;
    c.ipi_handle = 800.0;
    c.evict_fixed = 1668.0;          // 4KB evict = 406+1668+120+80 = 2,274.
    c.vds_switch_fixed = 187.0;      // VDS switch = 406+130+187 = 723.
    c.vds_alloc = 1400.0;
    c.migrate_fixed = 700.0;
    c.context_switch = 1209.8;       // +pgd write = 1339.8 plain;
                                     // §7.5: VDom's 1442.1 = +7.63%.
    c.context_switch_vdom = 102.3;
    c.memsync_page = 260.0;
    c.fault_entry = 450.0;
    c.vmfunc_base = 0.0;             // No VMFUNC on ARM (Table 3: undefined).
    c.vmfunc_mid = 0.0;
    c.vmfunc_many = 0.0;
    c.pkey_set = 286.4;              // ARM pkey_set needs a syscall
                                     // (DACR writes are privileged).
    c.mprotect_base = 400.0;
    c.busy_wait_spin = 300.0;
    c.wal_append = 150.0;            // DC CVAP persist on Cortex-A class.
    c.wal_flush = 800.0;             // DSB-ordered persist barrier.
    return c;
}

ArchParams
ArchParams::x86(std::size_t cores)
{
    ArchParams p;
    p.kind = ArchKind::kX86;
    p.page_size = 4096;
    p.pmd_span_pages = 512;
    p.num_pdoms = 16;
    p.default_pdom = 0;
    p.access_never_pdom = 1;
    p.num_reserved_pdoms = 2;        // pdom0 default, pdom1 access-never.
    p.user_perm_reg = true;
    p.num_cores = cores;
    p.tlb_entries = 1536;
    p.asid_slots = 6;                // Linux TLB_NR_DYN_ASIDS.
    p.range_flush_max_pages = 64;
    p.cpu_ghz = 2.1;                 // Xeon Gold 6230R.
    p.costs = default_costs(ArchKind::kX86);
    return p;
}

ArchParams
ArchParams::arm(std::size_t cores)
{
    ArchParams p;
    p.kind = ArchKind::kArm;
    p.page_size = 4096;
    p.pmd_span_pages = 512;
    p.num_pdoms = 16;
    p.default_pdom = 0;
    p.access_never_pdom = 1;
    // pdom0 default, pdom1 access-never, plus kernel + IO domains that
    // Linux reserves on ARM (§1: "some OS kernels reserve domains").
    p.num_reserved_pdoms = 4;
    p.user_perm_reg = false;         // DACR writes are privileged.
    p.num_cores = cores;
    p.tlb_entries = 512;             // Cortex-A53 main TLB.
    p.asid_slots = 0;                // ARM uses generation-based ASIDs.
    p.range_flush_max_pages = 32;
    p.cpu_ghz = 1.2;                 // Raspberry Pi 3.
    p.costs = default_costs(ArchKind::kArm);
    return p;
}

}  // namespace vdom::hw
