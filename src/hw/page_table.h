/// \file
/// Domain-tagged hierarchical page-table model.
///
/// Each VDS owns one of these (its private pgd); the kernel additionally
/// keeps a shadow instance as the master copy of the process layout (§6.2).
/// The model keeps two levels explicit: PTEs (one per 4KB page) and PMDs
/// (one per 2MB span).  That is enough to express the paper's §5.5
/// optimization: evicting a vdom whose pages cover whole 2MB spans disables
/// the PMD in O(1) instead of rewriting 512 PTEs, and huge-page mappings
/// (used by the libmpk 2MB-page baseline in Fig. 7) are single PMD entries.
///
/// The hardware layer is cost-agnostic: every mutator returns the number of
/// PTE/PMD writes it performed so the caller can charge cycles from the
/// architecture's CostTable.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "hw/arch.h"

namespace vdom::hw {

/// One page-table entry: present bit plus the domain tag.
struct Pte {
    bool present = false;
    bool prot_none = false;  ///< mprotect(PROT_NONE): faults until restored
                             ///  (the libmpk eviction mechanism, §3.2).
    Pdom pdom = 0;
};

/// Counts of entry writes performed by a page-table mutation.
struct PtOps {
    std::uint64_t pte_writes = 0;
    std::uint64_t pmd_writes = 0;

    PtOps &
    operator+=(const PtOps &other)
    {
        pte_writes += other.pte_writes;
        pmd_writes += other.pmd_writes;
        return *this;
    }
};

/// Result of a hardware translation through one page table.
struct Translation {
    bool present = false;   ///< False: page fault (not mapped or PMD off).
    bool pmd_disabled = false;  ///< True when the miss came from a disabled
                                ///  PMD (evicted large region, §5.5).
    bool prot_none = false;  ///< Miss came from a PROT_NONE page.
    bool huge = false;       ///< Mapped by a 2MB PMD entry.
    Pdom pdom = 0;           ///< Domain tag checked against PKRU/DACR.
};

/// A single address space's page table (one pgd).
class PageTable {
  public:
    /// \param pmd_span_pages pages covered by one PMD entry (512 for 2MB).
    /// \param access_never pdom used to neutralize stale sibling PTEs when
    ///        a disabled PMD span must be partially re-enabled.
    explicit PageTable(std::size_t pmd_span_pages = 512,
                       Pdom access_never = 1)
        : pmd_span_(pmd_span_pages), access_never_(access_never) {}

    /// Translates \p vpn.  Never mutates; no cost implied (the TLB model
    /// charges walk cycles).
    Translation translate(Vpn vpn) const;

    /// Maps one 4KB page with domain tag \p pdom.
    PtOps map_page(Vpn vpn, Pdom pdom);

    /// Unmaps one 4KB page.
    PtOps unmap_page(Vpn vpn);

    /// Removes the huge (or disabled-was-huge) PMD entry covering \p vpn.
    /// No-op when the span is a normal PTE table.
    PtOps unmap_huge(Vpn vpn);

    /// Maps a 2MB span as a single huge entry tagged \p pdom.
    /// \p vpn must be PMD-aligned.
    PtOps map_huge(Vpn vpn, Pdom pdom);

    /// Retags [vpn, vpn+count) with \p pdom.
    ///
    /// When \p allow_pmd_fast_path is set and a whole PMD span is disabled
    /// or uniformly mapped, the retag costs one PMD write for that span
    /// (the "remap a large domain to the same pdom" HLRU optimization).
    PtOps set_pdom_range(Vpn vpn, std::uint64_t count, Pdom pdom,
                         bool allow_pmd_fast_path);

    /// Disables [vpn, vpn+count): future accesses fault.
    ///
    /// Per the paper, evicted pages are retagged with the predefined
    /// access-never pdom (\p access_never), so a later remap only rewrites
    /// domain tags.  With \p allow_pmd_fast_path, spans of continuous
    /// non-huge pages that cover a full PMD are disabled by one PMD write
    /// instead (§5.5); the prior pdom is remembered for the HLRU
    /// remap-to-same-pdom optimization.
    PtOps disable_range(Vpn vpn, std::uint64_t count, Pdom access_never,
                        bool allow_pmd_fast_path);

    /// mprotect(PROT_NONE) over [vpn, vpn+count): present pages fault until
    /// a later set_pdom_range restores them.  Per-PTE (no §5.5 fast path —
    /// this is the baseline mechanism); huge mappings disable their PMD.
    PtOps protect_none_range(Vpn vpn, std::uint64_t count);

    /// Returns the number of present 4KB-equivalent pages (huge counts as
    /// pmd_span).  Debug/test helper.
    std::uint64_t present_pages() const;

    std::size_t pmd_span_pages() const { return pmd_span_; }

    /// PMD-span index containing \p vpn.
    Vpn pmd_index(Vpn vpn) const { return vpn / pmd_span_; }

  private:
    enum class PmdKind : std::uint8_t {
        kTable,     ///< Points to a PTE table (the leaf's flat PTE block).
        kDisabled,  ///< §5.5: whole span faults; saved pdom for remap.
        kHuge,      ///< 2MB mapping with a single domain tag.
    };

    /// One radix leaf: the PMD entry plus its PTE block as a flat array —
    /// translate and whole-span retags are pointer-arithmetic walks, like
    /// a real page table (one 4KB PTE page per PMD entry).
    struct Leaf {
        PmdKind kind = PmdKind::kTable;
        Pdom pdom = 0;           ///< For kHuge; for kDisabled: prior pdom.
        bool was_huge = false;   ///< Disabled entry had a huge backing.
        std::uint32_t present = 0;  ///< Present PTEs under this PMD.
        std::vector<Pte> ptes;   ///< pmd_span entries, dense.

        explicit Leaf(std::size_t span) : ptes(span) {}
    };

    /// PMD indices below this use the dense directory (a flat pointer
    /// array — mmap allocates VPNs bottom-up, so real address spaces land
    /// here); pathological sparse indices overflow into a hash map.
    static constexpr Vpn kDenseLimit = Vpn{1} << 16;

    /// Leaf covering PMD index \p idx, or nullptr.
    Leaf *
    leaf_at(Vpn idx) const
    {
        if (idx < dense_.size())
            return dense_[idx].get();
        if (idx < kDenseLimit)
            return nullptr;
        auto it = sparse_.find(idx);
        return it == sparse_.end() ? nullptr : it->second.get();
    }

    /// Leaf covering PMD index \p idx, created on demand.
    Leaf &leaf_grow(Vpn idx);

    /// Drops the leaf at \p idx entirely (PMD entry + PTE block).
    void leaf_drop(Vpn idx);

    /// True when every page in [base, base+span) is present, same pdom,
    /// and the span exactly covers the PMD.
    bool span_uniform(const Leaf *leaf, Pdom *pdom_out) const;

    std::size_t pmd_span_;
    Pdom access_never_;
    std::vector<std::unique_ptr<Leaf>> dense_;
    std::unordered_map<Vpn, std::unique_ptr<Leaf>> sparse_;
};

}  // namespace vdom::hw
