/// \file
/// ASID-tagged, capacity-limited translation lookaside buffer model.

#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "hw/arch.h"

namespace vdom::hw {

/// A cached translation: the domain tag travels with the TLB entry, exactly
/// as on MPK/ARM hardware ("TLB entries are tagged with the domain
/// identifier of the pages", §2).
struct TlbEntry {
    Pdom pdom = 0;
    bool huge = false;
};

/// Per-core unified TLB with true LRU replacement.
///
/// Entries are tagged by ASID, so switching page tables does not require a
/// flush — the mechanism VDom leans on for cheap VDS switches (§5).  The
/// model tracks hit/miss/flush statistics; the MMU charges walk cycles for
/// misses and the shootdown manager charges flush cycles.
class Tlb {
  public:
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t flushes_all = 0;
        std::uint64_t flushes_asid = 0;
        std::uint64_t flushed_pages = 0;  ///< Entries dropped by range flush.
        std::uint64_t evictions = 0;      ///< Capacity evictions.
        std::uint64_t fault_drops = 0;    ///< Injected spurious invalidations.
    };

    /// \param owner  core id used as the telemetry shard for this TLB's
    ///        metrics (0 for standalone TLBs in tests/benches).
    explicit Tlb(std::size_t capacity, std::size_t owner = 0)
        : capacity_(capacity), owner_(owner)
    {
    }

    /// Looks up (asid, vpn); refreshes LRU position on hit.
    std::optional<TlbEntry> lookup(Asid asid, Vpn vpn);

    /// Installs a translation, evicting the LRU victim when full.
    void insert(Asid asid, Vpn vpn, const TlbEntry &entry);

    /// Drops every entry.
    void flush_all();

    /// Drops every entry tagged \p asid.
    void flush_asid(Asid asid);

    /// Drops entries for [vpn, vpn+count) in \p asid; returns the number of
    /// pages actually touched (for range-flush cost accounting).
    std::uint64_t flush_range(Asid asid, Vpn vpn, std::uint64_t count);

    std::size_t size() const { return map_.size(); }
    std::size_t capacity() const { return capacity_; }
    const Stats &stats() const { return stats_; }
    void reset_stats() { stats_ = Stats{}; }

  private:
    using Key = std::uint64_t;

    static Key
    make_key(Asid asid, Vpn vpn)
    {
        return (static_cast<std::uint64_t>(asid) << 48) | (vpn & 0xffffffffffffULL);
    }

    struct Node {
        Key key;
        TlbEntry entry;
    };

    std::size_t capacity_;
    std::size_t owner_ = 0;
    std::list<Node> lru_;  ///< Front = most recently used.
    std::unordered_map<Key, std::list<Node>::iterator> map_;
    Stats stats_;
};

}  // namespace vdom::hw
