/// \file
/// ASID-tagged, capacity-limited translation lookaside buffer model.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hw/arch.h"
#include "sim/fault.h"
#include "telemetry/metrics.h"

namespace vdom::hw {

/// A cached translation: the domain tag travels with the TLB entry, exactly
/// as on MPK/ARM hardware ("TLB entries are tagged with the domain
/// identifier of the pages", §2).
struct TlbEntry {
    Pdom pdom = 0;
    bool huge = false;
};

/// Per-core unified set-associative TLB with exact per-set LRU replacement.
///
/// Entries are tagged by ASID, so switching page tables does not require a
/// flush — the mechanism VDom leans on for cheap VDS switches (§5).  The
/// model tracks hit/miss/flush statistics; the MMU charges walk cycles for
/// misses and the shootdown manager charges flush cycles.
///
/// Storage is flat (no per-entry allocation): a fixed slot array threaded
/// with per-set intrusive LRU lists, indexed by an open-addressing hash
/// table.  The default geometry is fully associative (one set of
/// `capacity` ways), whose eviction order is bit-identical to the previous
/// `unordered_map` + `list` global-LRU implementation — proven by the
/// golden-replay test in tests/test_tlb_replay.cc.  Passing `ways` selects
/// a real set-associative geometry (sets is the largest power of two
/// ≤ capacity/ways; per-set ways = capacity/sets): more hardware-faithful,
/// but the conflict misses it introduces change hit/miss sequences, so the
/// paper-reproduction machines keep the fully-associative default.
class Tlb {
  public:
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t flushes_all = 0;
        std::uint64_t flushes_asid = 0;
        std::uint64_t flushed_pages = 0;  ///< Entries dropped by range flush.
        std::uint64_t evictions = 0;      ///< Capacity evictions.
        std::uint64_t assoc_conflicts = 0;  ///< Evictions while the TLB as a
                                            ///  whole still had free slots
                                            ///  (set-associative mode only).
        std::uint64_t fault_drops = 0;    ///< Injected spurious invalidations.
    };

    /// \param capacity total entries.
    /// \param owner  core id used as the telemetry shard for this TLB's
    ///        metrics (0 for standalone TLBs in tests/benches).
    /// \param ways   target associativity; 0 (default) = fully associative.
    explicit Tlb(std::size_t capacity, std::size_t owner = 0,
                 std::size_t ways = 0);

    /// Looks up (asid, vpn); refreshes LRU position on hit.  Defined
    /// inline below: this is the single hottest simulator function (every
    /// modeled memory access lands here), and keeping it visible to the
    /// MMU lets the compiler fold the whole hit path into do_translate.
    std::optional<TlbEntry> lookup(Asid asid, Vpn vpn);

    /// Installs a translation, evicting the set's LRU victim when the set
    /// is full.
    void insert(Asid asid, Vpn vpn, const TlbEntry &entry);

    /// Drops every entry.
    void flush_all();

    /// Drops every entry tagged \p asid.
    void flush_asid(Asid asid);

    /// Drops entries for [vpn, vpn+count) in \p asid; returns the number of
    /// pages actually touched (for range-flush cost accounting).
    std::uint64_t flush_range(Asid asid, Vpn vpn, std::uint64_t count);

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }
    std::size_t num_sets() const { return num_sets_; }
    std::size_t ways() const { return ways_; }
    const Stats &stats() const { return stats_; }
    void reset_stats() { stats_ = Stats{}; }

    /// Set an (asid, vpn) pair indexes into — exposed so tests and benches
    /// can construct conflict-miss workloads deterministically.
    std::size_t
    set_index(Asid asid, Vpn vpn) const
    {
        return set_of(make_key(asid, vpn));
    }

  private:
    using Key = std::uint64_t;

    static constexpr std::uint32_t kNil = 0xffffffffu;

    static Key
    make_key(Asid asid, Vpn vpn)
    {
        return (static_cast<std::uint64_t>(asid) << 48) |
               (vpn & 0xffffffffffffULL);
    }

    /// Fibonacci (multiplicative) hash: a single multiply whose *high*
    /// bits are well mixed even for sequential VPNs.  One multiply matters
    /// here — the backward-shift deletion recomputes the hash for every
    /// cell it probes, so this sits on the insert/evict hot path.
    static std::uint64_t
    mix(Key key)
    {
        return key * 0x9e3779b97f4a7c15ULL;
    }

    /// One TLB entry slot, threaded into its set's LRU list.
    struct Slot {
        Key key = 0;
        std::uint32_t prev = kNil;  ///< Towards MRU.
        std::uint32_t next = kNil;  ///< Towards LRU.
        std::uint32_t set = 0;
        TlbEntry entry;
        bool used = false;
    };

    /// Open-addressing index cell (linear probing, ≤50% load).
    struct Cell {
        Key key = 0;
        std::uint32_t slot = kNil;  ///< kNil = empty cell.
    };

    std::size_t set_of(Key key) const
    {
        return (mix(key) >> 32) & (num_sets_ - 1);
    }

    /// Index cell a key ideally lands in: the hash's top bits (the mixed
    /// ones), taken by shift rather than mask.
    std::size_t ideal_pos(Key key) const { return mix(key) >> hash_shift_; }

    std::uint32_t
    index_find(Key key) const
    {
        std::size_t pos = ideal_pos(key);
        while (true) {
            const Cell &cell = index_[pos];
            if (cell.slot == kNil)
                return kNil;
            if (cell.key == key)
                return cell.slot;
            pos = (pos + 1) & index_mask_;
        }
    }

    void index_insert(Key key, std::uint32_t slot);
    void index_erase(Key key);

    void
    list_unlink(std::uint32_t slot)
    {
        Slot &s = slots_[slot];
        if (s.prev != kNil)
            slots_[s.prev].next = s.next;
        else
            set_head_[s.set] = s.next;
        if (s.next != kNil)
            slots_[s.next].prev = s.prev;
        else
            set_tail_[s.set] = s.prev;
    }

    void
    list_push_front(std::uint32_t slot)
    {
        Slot &s = slots_[slot];
        s.prev = kNil;
        s.next = set_head_[s.set];
        if (s.next != kNil)
            slots_[s.next].prev = slot;
        else
            set_tail_[s.set] = slot;
        set_head_[s.set] = slot;
    }

    void
    touch_front(std::uint32_t slot)
    {
        if (set_head_[slots_[slot].set] == slot)
            return;
        list_unlink(slot);
        list_push_front(slot);
    }

    /// Removes an occupied slot entirely (index + list + free list).
    void remove_slot(std::uint32_t slot);

    std::size_t capacity_;      ///< Reported capacity (constructor value).
    std::size_t slot_count_;    ///< Effective capacity (num_sets_ * ways_).
    std::size_t num_sets_;      ///< Power of two.
    std::size_t ways_;
    std::size_t owner_ = 0;
    std::size_t size_ = 0;

    std::vector<Slot> slots_;
    std::uint32_t free_head_ = kNil;  ///< Free slots chained via `next`.
    std::vector<std::uint32_t> set_head_;  ///< Per-set MRU.
    std::vector<std::uint32_t> set_tail_;  ///< Per-set LRU.
    std::vector<std::uint32_t> set_size_;
    std::vector<Cell> index_;
    std::size_t index_mask_ = 0;
    unsigned hash_shift_ = 63;  ///< 64 - log2(index size).
    Stats stats_;
};

inline std::optional<TlbEntry>
Tlb::lookup(Asid asid, Vpn vpn)
{
    Key key = make_key(asid, vpn);
    std::uint32_t slot = index_find(key);
    if (slot != kNil && sim::fault_fires(sim::FaultSite::kTlbEntryDrop)) {
        // Injected spurious invalidation: the entry vanishes and the
        // lookup misses; the subsequent page-table walk re-fills it.
        remove_slot(slot);
        slot = kNil;
        ++stats_.fault_drops;
    }
    if (slot == kNil) {
        ++stats_.misses;
        telemetry::metric_add(telemetry::Metric::kTlbMiss, 1, owner_);
        return std::nullopt;
    }
    ++stats_.hits;
    telemetry::metric_add(telemetry::Metric::kTlbHit, 1, owner_);
    touch_front(slot);
    return slots_[slot].entry;
}

}  // namespace vdom::hw
