/// \file
/// The simulated multiprocessor: parameter block plus a set of cores.

#pragma once

#include <memory>
#include <vector>

#include "hw/arch.h"
#include "hw/core.h"

namespace vdom::hw {

/// Owns the cores of one simulated platform.
class Machine {
  public:
    explicit Machine(const ArchParams &params) : params_(params)
    {
        cores_.reserve(params_.num_cores);
        for (std::size_t i = 0; i < params_.num_cores; ++i)
            cores_.push_back(std::make_unique<Core>(i, params_));
    }

    const ArchParams &params() const { return params_; }
    std::size_t num_cores() const { return cores_.size(); }

    Core &core(std::size_t id) { return *cores_[id]; }
    const Core &core(std::size_t id) const { return *cores_[id]; }

    /// Aggregate cycle breakdown across all cores.
    CycleBreakdown
    total_breakdown() const
    {
        CycleBreakdown sum;
        for (const auto &c : cores_)
            sum += c->breakdown();
        return sum;
    }

    /// Maximum core clock (the simulated wall-clock of a parallel phase).
    Cycles
    max_clock() const
    {
        Cycles max = 0;
        for (const auto &c : cores_)
            max = std::max(max, c->now());
        return max;
    }

    /// Resets every core (benchmark setup).
    void
    reset()
    {
        for (auto &c : cores_)
            c->reset();
    }

  private:
    ArchParams params_;
    std::vector<std::unique_ptr<Core>> cores_;
};

}  // namespace vdom::hw
