/// \file
/// Simulated processor core: local clock, TLB, permission register.

#pragma once

#include <cstdint>

#include "hw/arch.h"
#include "hw/cost_kind.h"
#include "hw/perm_register.h"
#include "hw/tlb.h"

namespace vdom::hw {

class PageTable;

/// One simulated hardware thread.
///
/// A core owns the per-core architectural state the paper's design depends
/// on: the domain permission register (PKRU/DACR), an ASID-tagged TLB, the
/// current page-table base (pgd) and ASID, and a local cycle clock.  All
/// cycle charges name a CostKind so benches can report breakdowns.
class Core {
  public:
    Core(std::size_t id, const ArchParams &params)
        : id_(id), params_(&params), tlb_(params.tlb_entries, id)
    {
        perm_reg_.set_owner(id);
    }

    std::size_t id() const { return id_; }
    const ArchParams &params() const { return *params_; }
    const CostTable &costs() const { return params_->costs; }

    /// Local clock in cycles.
    Cycles now() const { return clock_; }

    /// Advances the clock by \p cycles, attributing them to \p kind.
    void
    charge(CostKind kind, Cycles cycles)
    {
        clock_ += cycles;
        breakdown_.add(kind, cycles);
    }

    /// Moves the clock forward to \p when (idle/wait until a future event);
    /// the elapsed time is attributed to \p kind.
    void
    advance_to(Cycles when, CostKind kind)
    {
        if (when > clock_) {
            breakdown_.add(kind, when - clock_);
            clock_ = when;
        }
    }

    Tlb &tlb() { return tlb_; }
    const Tlb &tlb() const { return tlb_; }
    PermRegister &perm_reg() { return perm_reg_; }
    const PermRegister &perm_reg() const { return perm_reg_; }

    /// Currently installed address space.
    const PageTable *pgd() const { return pgd_; }
    Asid asid() const { return asid_; }

    /// Installs a new (pgd, asid) pair, charging the base-register write.
    /// TLB is NOT flushed: ASID tagging makes that unnecessary (§5).
    void
    switch_pgd(const PageTable *pgd, Asid asid, CostKind kind)
    {
        pgd_ = pgd;
        asid_ = asid;
        charge(kind, costs().pgd_switch);
    }

    /// Installs (pgd, asid) without charging (initial placement).
    void
    set_pgd(const PageTable *pgd, Asid asid)
    {
        pgd_ = pgd;
        asid_ = asid;
    }

    const CycleBreakdown &breakdown() const { return breakdown_; }
    CycleBreakdown &breakdown() { return breakdown_; }

    /// Resets clock, stats and architectural state (benchmark setup).
    void
    reset()
    {
        clock_ = 0;
        breakdown_ = CycleBreakdown{};
        tlb_.flush_all();
        tlb_.reset_stats();
        perm_reg_.reset();
        pgd_ = nullptr;
        asid_ = 0;
    }

  private:
    std::size_t id_;
    const ArchParams *params_;
    Cycles clock_ = 0;
    Tlb tlb_;
    PermRegister perm_reg_;
    const PageTable *pgd_ = nullptr;
    Asid asid_ = 0;
    CycleBreakdown breakdown_;
};

}  // namespace vdom::hw
