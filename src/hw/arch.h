/// \file
/// Architecture descriptors for the simulated hardware substrate.
///
/// VDom targets two real memory-domain primitives: Intel MPK (user-writable
/// PKRU, 4KB granularity) and the 32-bit ARM Memory Domain (privileged DACR,
/// section granularity).  The reproduction runs on a cycle-accounting
/// simulator, so each architecture is described by a parameter block plus a
/// table of per-event cycle costs.  All calibration lives here: the Table 3
/// microbenchmark reproduction tunes these constants once, and every macro
/// result (Figures 1/5/6/7, Tables 4/5) then follows from *event counts*.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace vdom::hw {

/// Simulated cycle count.  Double so sub-cycle averages (e.g. the paper's
/// 6.7-cycle API call) are representable.
using Cycles = double;

/// Virtual address / virtual page number.
using VAddr = std::uint64_t;
using Vpn = std::uint64_t;

/// Physical (hardware) domain identifier: 0..num_pdoms-1.
using Pdom = std::uint8_t;

/// Address space identifier (PCID on X86).
using Asid = std::uint32_t;

/// Supported instruction-set architectures.
enum class ArchKind {
    kX86,  ///< Intel with MPK: user-space PKRU writes, 4KB pages.
    kArm,  ///< 32-bit ARM Memory Domain: privileged DACR writes.
};

/// Returns a human-readable architecture name ("X86" / "ARM").
const char *arch_name(ArchKind kind);

/// Per-event cycle costs for one architecture.
///
/// The values are calibrated so that the Table 3 reproduction
/// (bench/tab3_micro_ops) lands near the paper's measurements; see
/// EXPERIMENTS.md for the calibration record.
struct CostTable {
    // --- privilege boundary ---------------------------------------------
    Cycles api_call;            ///< Empty trusted-API call + return.
    Cycles syscall;             ///< Empty syscall + return (kernel entry/exit).

    // --- permission registers -------------------------------------------
    Cycles perm_reg_write;      ///< WRPKRU / DACR write (register op only).
    Cycles perm_reg_read;       ///< RDPKRU / DACR read.
    Cycles vdr_update;          ///< Update the in-memory VDR array slot.
    Cycles perm_compute;        ///< Arithmetic merging VDR bits into PKRU/DACR.
    Cycles secure_gate;         ///< Extra work of the secure call gate
                                ///  (pdom1 toggle, lsl, stack switch, check).

    // --- page tables ------------------------------------------------------
    Cycles pte_update;          ///< Retag / disable one PTE.
    Cycles pmd_update;          ///< Retag / disable one PMD (2MB block).
    Cycles pt_walk;             ///< Hardware page-table walk on TLB miss.
    Cycles pgd_switch;          ///< Write page-table base register (no flush).

    // --- TLB ---------------------------------------------------------------
    Cycles tlb_hit;             ///< TLB lookup that hits.
    Cycles tlb_flush_all;       ///< Invalidate every local entry.
    Cycles tlb_flush_asid;      ///< Invalidate one ASID's local entries.
    Cycles tlb_flush_page;      ///< Invalidate a single page (range flushes
                                ///  cost this per page, see §5.5).
    Cycles ipi_post;            ///< Post one inter-processor interrupt.
    Cycles ipi_wait;            ///< Initiator wait per acked remote core.
    Cycles ipi_handle;          ///< Remote core's interrupt-handling cost.

    // --- kernel bookkeeping -------------------------------------------------
    Cycles evict_fixed;         ///< Fixed VDT walk + HLRU + map bookkeeping
                                ///  per eviction.
    Cycles vds_switch_fixed;    ///< VDS metadata + perm-register resync on a
                                ///  pgd switch.
    Cycles vds_alloc;           ///< Allocate + initialize a new VDS.
    Cycles migrate_fixed;       ///< Thread-migration bookkeeping (Fig. 3).
    Cycles context_switch;      ///< Baseline kernel switch_mm cost.
    Cycles context_switch_vdom; ///< Extra switch_mm cost for VDS metadata.
    Cycles memsync_page;        ///< Eager per-VDS synchronization of one
                                ///  page-table entry (§6.2).
    Cycles fault_entry;         ///< Page/protection fault entry + decode.

    // --- virtualization baselines ------------------------------------------
    Cycles vmfunc_base;         ///< VMFUNC with few EPTs (EPK, Table 3).
    Cycles vmfunc_mid;          ///< VMFUNC with a moderate EPT count.
    Cycles vmfunc_many;         ///< VMFUNC with many EPTs.
    Cycles pkey_set;            ///< libmpk user-space pkey_set path.
    Cycles mprotect_base;       ///< mprotect syscall fixed cost (libmpk path).
    Cycles busy_wait_spin;      ///< One busy-wait poll iteration (libmpk).

    // --- crash consistency (kernel/wal.h) ----------------------------------
    Cycles wal_append;          ///< Persist one WAL record (cacheline write).
    Cycles wal_flush;           ///< Durability barrier sealing a record.
};

/// Returns the calibrated cost table for \p kind.
CostTable default_costs(ArchKind kind);

/// Design-choice toggles for ablation studies (bench/ablation_design).
///
/// Each knob disables one of the paper's optimizations so its contribution
/// can be measured in isolation; all default to the paper's design.
struct DesignKnobs {
    bool pmd_fast_path = true;     ///< §5.5: PMD-level disable/remap for
                                   ///  2MB-spanning vdoms (off: per-PTE).
    bool hlru = true;              ///< §5.5: HLRU remap-to-same-pdom
                                   ///  (off: strict LRU, no pdom affinity).
    bool asid = true;              ///< §5: ASID-tagged TLB (off: every pgd
                                   ///  switch flushes the local TLB).
    bool narrow_shootdown = true;  ///< §5.5: CPU-bitmap-targeted shootdowns
                                   ///  (off: broadcast to every process
                                   ///  core, libmpk-style).
};

/// Full description of one simulated platform.
struct ArchParams {
    ArchKind kind = ArchKind::kX86;

    std::size_t page_size = 4096;       ///< Base page size in bytes.
    std::size_t pmd_span_pages = 512;   ///< Pages covered by one PMD (2MB).

    std::size_t num_pdoms = 16;         ///< Hardware domains (MPK & ARM: 16).
    Pdom default_pdom = 0;              ///< pdom for unprotected memory.
    Pdom access_never_pdom = 1;         ///< Eviction target + API protection.
    std::size_t num_reserved_pdoms = 2; ///< default + access-never (+2 more
                                        ///  on ARM: kernel and IO domains).

    bool user_perm_reg = true;          ///< PKRU is user-writable; DACR not.

    std::size_t num_cores = 8;          ///< Simulated cores.
    std::size_t tlb_entries = 1536;     ///< Per-core unified TLB capacity.
    std::size_t asid_slots = 6;         ///< X86: per-core PCID cache slots.
    std::size_t range_flush_max_pages = 64;  ///< §5.5: above this, a range
                                             ///  flush degrades to flush-asid.
    double cpu_ghz = 2.1;               ///< For cycles -> seconds conversion.

    /// Number of pdoms usable for protected vdoms in one VDS:
    /// num_pdoms - reserved.
    std::size_t usable_pdoms() const { return num_pdoms - num_reserved_pdoms; }

    CostTable costs;
    DesignKnobs knobs;

    /// Calibrated Intel platform (Xeon Gold 6230R-like, 26 cores in the
    /// paper; default 8 simulated cores for test speed, benches raise it).
    static ArchParams x86(std::size_t cores = 8);
    /// Calibrated ARM platform (Raspberry Pi 3-like: 4 cores, small TLB).
    static ArchParams arm(std::size_t cores = 4);
};

}  // namespace vdom::hw
