/// \file
/// Domain-tagged page-table model implementation.

#include "hw/page_table.h"

namespace vdom::hw {

Translation
PageTable::translate(Vpn vpn) const
{
    Translation t;
    auto pmd_it = pmds_.find(pmd_index(vpn));
    if (pmd_it != pmds_.end()) {
        const PmdEntry &pmd = pmd_it->second;
        if (pmd.kind == PmdKind::kDisabled) {
            t.present = false;
            t.pmd_disabled = true;
            return t;
        }
        if (pmd.kind == PmdKind::kHuge) {
            t.present = true;
            t.huge = true;
            t.pdom = pmd.pdom;
            return t;
        }
    }
    auto it = ptes_.find(vpn);
    if (it == ptes_.end() || !it->second.present)
        return t;
    if (it->second.prot_none) {
        t.prot_none = true;
        return t;
    }
    t.present = true;
    t.pdom = it->second.pdom;
    return t;
}

PtOps
PageTable::protect_none_range(Vpn vpn, std::uint64_t count)
{
    PtOps ops;
    Vpn v = vpn;
    Vpn end = vpn + count;
    while (v < end) {
        Vpn pmd_base = pmd_index(v);
        Vpn span_start = pmd_base * pmd_span_;
        Vpn span_end = span_start + pmd_span_;
        auto pmd_it = pmds_.find(pmd_base);
        if (pmd_it != pmds_.end() && pmd_it->second.kind == PmdKind::kHuge &&
            v == span_start && end >= span_end) {
            pmd_it->second.kind = PmdKind::kDisabled;
            pmd_it->second.was_huge = true;
            ++ops.pmd_writes;
            v = span_end;
            continue;
        }
        auto it = ptes_.find(v);
        if (it != ptes_.end() && it->second.present &&
            !it->second.prot_none) {
            it->second.prot_none = true;
            ++ops.pte_writes;
        }
        ++v;
    }
    return ops;
}

PtOps
PageTable::map_page(Vpn vpn, Pdom pdom)
{
    PtOps ops;
    PmdEntry &pmd = pmds_[pmd_index(vpn)];
    if (pmd.kind != PmdKind::kTable) {
        // Re-enable the span as a PTE table before installing the page.
        // Sibling PTEs under a disabled PMD still carry their pre-eviction
        // tags; neutralize them so re-enabling one page cannot resurrect
        // the whole evicted span.
        if (pmd.kind == PmdKind::kDisabled) {
            Vpn base = pmd_index(vpn) * pmd_span_;
            for (Vpn p = base; p < base + pmd_span_; ++p) {
                auto it = ptes_.find(p);
                if (it != ptes_.end() && it->second.present &&
                    p != vpn) {
                    it->second.pdom = access_never_;
                    ++ops.pte_writes;
                }
            }
        }
        pmd.kind = PmdKind::kTable;
        pmd.was_huge = false;
        ++ops.pmd_writes;
    }
    Pte &pte = ptes_[vpn];
    if (!pte.present)
        ++pmd.present;
    pte.present = true;
    pte.pdom = pdom;
    ++ops.pte_writes;
    return ops;
}

PtOps
PageTable::unmap_page(Vpn vpn)
{
    PtOps ops;
    auto it = ptes_.find(vpn);
    if (it == ptes_.end() || !it->second.present)
        return ops;
    it->second.present = false;
    ++ops.pte_writes;
    auto pmd_it = pmds_.find(pmd_index(vpn));
    if (pmd_it != pmds_.end() && pmd_it->second.present > 0)
        --pmd_it->second.present;
    ptes_.erase(it);
    return ops;
}

PtOps
PageTable::unmap_huge(Vpn vpn)
{
    PtOps ops;
    auto it = pmds_.find(pmd_index(vpn));
    if (it == pmds_.end())
        return ops;
    if (it->second.kind == PmdKind::kHuge ||
        (it->second.kind == PmdKind::kDisabled && it->second.was_huge)) {
        pmds_.erase(it);
        ++ops.pmd_writes;
    }
    return ops;
}

PtOps
PageTable::map_huge(Vpn vpn, Pdom pdom)
{
    PtOps ops;
    PmdEntry &pmd = pmds_[pmd_index(vpn)];
    pmd.kind = PmdKind::kHuge;
    pmd.pdom = pdom;
    pmd.present = 0;
    ++ops.pmd_writes;
    // Drop any stale PTEs shadowed by the huge entry.
    Vpn base = pmd_index(vpn) * pmd_span_;
    for (Vpn v = base; v < base + pmd_span_; ++v)
        ptes_.erase(v);
    return ops;
}

bool
PageTable::span_uniform(Vpn pmd_base, Pdom *pdom_out) const
{
    auto pmd_it = pmds_.find(pmd_base);
    if (pmd_it == pmds_.end())
        return false;
    const PmdEntry &pmd = pmd_it->second;
    if (pmd.kind != PmdKind::kTable || pmd.present != pmd_span_)
        return false;
    Vpn base = pmd_base * pmd_span_;
    auto first = ptes_.find(base);
    if (first == ptes_.end())
        return false;
    Pdom pdom = first->second.pdom;
    for (Vpn v = base; v < base + pmd_span_; ++v) {
        auto it = ptes_.find(v);
        if (it == ptes_.end() || !it->second.present ||
            it->second.prot_none || it->second.pdom != pdom) {
            return false;
        }
    }
    if (pdom_out)
        *pdom_out = pdom;
    return true;
}

PtOps
PageTable::set_pdom_range(Vpn vpn, std::uint64_t count, Pdom pdom,
                          bool allow_pmd_fast_path)
{
    PtOps ops;
    Vpn v = vpn;
    Vpn end = vpn + count;
    while (v < end) {
        Vpn pmd_base = pmd_index(v);
        Vpn span_start = pmd_base * pmd_span_;
        Vpn span_end = span_start + pmd_span_;
        bool covers_span = (v == span_start && end >= span_end);
        auto pmd_it = pmds_.find(pmd_base);
        if (covers_span && pmd_it != pmds_.end()) {
            PmdEntry &pmd = pmd_it->second;
            if (pmd.kind == PmdKind::kHuge) {
                pmd.pdom = pdom;
                ++ops.pmd_writes;
                v = span_end;
                continue;
            }
            if (pmd.kind == PmdKind::kDisabled) {
                if (pmd.was_huge) {
                    // Restore the huge mapping with the new tag: the PMD is
                    // the only entry either way.
                    pmd.kind = PmdKind::kHuge;
                    pmd.pdom = pdom;
                    pmd.was_huge = false;
                    ++ops.pmd_writes;
                    v = span_end;
                    continue;
                }
                if (allow_pmd_fast_path && pmd.pdom == pdom) {
                    // §5.5 HLRU remap: the vdom returns to the same pdom it
                    // last occupied, so the (uniform) PTE tags below the
                    // disabled PMD are still valid; one PMD write restores
                    // the whole span without touching 512 PTEs.
                    pmd.kind = PmdKind::kTable;
                    ++ops.pmd_writes;
                    v = span_end;
                    continue;
                }
                // Different pdom: re-enable the span and pay per-PTE retags.
                pmd.kind = PmdKind::kTable;
                ++ops.pmd_writes;
                for (Vpn p = span_start; p < span_end; ++p) {
                    auto it = ptes_.find(p);
                    if (it != ptes_.end() && it->second.present) {
                        it->second.pdom = pdom;
                        it->second.prot_none = false;
                        ++ops.pte_writes;
                    }
                }
                v = span_end;
                continue;
            }
        }
        auto it = ptes_.find(v);
        if (it != ptes_.end() && it->second.present) {
            it->second.pdom = pdom;
            it->second.prot_none = false;
            ++ops.pte_writes;
        }
        ++v;
    }
    return ops;
}

PtOps
PageTable::disable_range(Vpn vpn, std::uint64_t count, Pdom access_never,
                         bool allow_pmd_fast_path)
{
    PtOps ops;
    Vpn v = vpn;
    Vpn end = vpn + count;
    while (v < end) {
        Vpn pmd_base = pmd_index(v);
        Vpn span_start = pmd_base * pmd_span_;
        Vpn span_end = span_start + pmd_span_;
        bool covers_span = (v == span_start && end >= span_end);
        if (covers_span) {
            auto pmd_it = pmds_.find(pmd_base);
            if (pmd_it != pmds_.end() &&
                pmd_it->second.kind == PmdKind::kHuge) {
                pmd_it->second.kind = PmdKind::kDisabled;
                pmd_it->second.was_huge = true;
                ++ops.pmd_writes;
                v = span_end;
                continue;
            }
            Pdom uniform_pdom = 0;
            if (allow_pmd_fast_path && span_uniform(pmd_base, &uniform_pdom)) {
                PmdEntry &pmd = pmds_[pmd_base];
                pmd.kind = PmdKind::kDisabled;
                pmd.pdom = uniform_pdom;
                ++ops.pmd_writes;
                v = span_end;
                continue;
            }
        }
        auto it = ptes_.find(v);
        if (it != ptes_.end() && it->second.present &&
            it->second.pdom != access_never) {
            it->second.pdom = access_never;
            ++ops.pte_writes;
        }
        ++v;
    }
    return ops;
}

std::uint64_t
PageTable::present_pages() const
{
    std::uint64_t count = 0;
    for (const auto &[vpn, pte] : ptes_) {
        (void)vpn;
        if (pte.present)
            ++count;
    }
    for (const auto &[idx, pmd] : pmds_) {
        (void)idx;
        if (pmd.kind == PmdKind::kHuge)
            count += pmd_span_;
    }
    return count;
}

}  // namespace vdom::hw
