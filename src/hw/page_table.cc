/// \file
/// Domain-tagged page-table model implementation (two-level radix: a dense
/// PMD directory of leaves, each leaf a flat PTE block).

#include "hw/page_table.h"

#include <algorithm>

namespace vdom::hw {

PageTable::Leaf &
PageTable::leaf_grow(Vpn idx)
{
    if (idx < kDenseLimit) {
        if (idx >= dense_.size()) {
            std::size_t grown =
                std::max<std::size_t>(idx + 1, dense_.size() * 2);
            dense_.resize(std::min<std::size_t>(grown, kDenseLimit));
        }
        if (!dense_[idx])
            dense_[idx] = std::make_unique<Leaf>(pmd_span_);
        return *dense_[idx];
    }
    auto &slot = sparse_[idx];
    if (!slot)
        slot = std::make_unique<Leaf>(pmd_span_);
    return *slot;
}

void
PageTable::leaf_drop(Vpn idx)
{
    if (idx < dense_.size())
        dense_[idx].reset();
    else if (idx >= kDenseLimit)
        sparse_.erase(idx);
}

Translation
PageTable::translate(Vpn vpn) const
{
    Translation t;
    Vpn idx = pmd_index(vpn);
    const Leaf *leaf = leaf_at(idx);
    if (!leaf)
        return t;
    if (leaf->kind == PmdKind::kDisabled) {
        t.present = false;
        t.pmd_disabled = true;
        return t;
    }
    if (leaf->kind == PmdKind::kHuge) {
        t.present = true;
        t.huge = true;
        t.pdom = leaf->pdom;
        return t;
    }
    const Pte &pte = leaf->ptes[vpn - idx * pmd_span_];
    if (!pte.present)
        return t;
    if (pte.prot_none) {
        t.prot_none = true;
        return t;
    }
    t.present = true;
    t.pdom = pte.pdom;
    return t;
}

PtOps
PageTable::protect_none_range(Vpn vpn, std::uint64_t count)
{
    PtOps ops;
    Vpn v = vpn;
    Vpn end = vpn + count;
    while (v < end) {
        Vpn idx = pmd_index(v);
        Vpn span_start = idx * pmd_span_;
        Vpn span_end = span_start + pmd_span_;
        Leaf *leaf = leaf_at(idx);
        if (leaf && leaf->kind == PmdKind::kHuge && v == span_start &&
            end >= span_end) {
            leaf->kind = PmdKind::kDisabled;
            leaf->was_huge = true;
            ++ops.pmd_writes;
            v = span_end;
            continue;
        }
        Vpn chunk_end = std::min(end, span_end);
        if (leaf) {
            for (; v < chunk_end; ++v) {
                Pte &pte = leaf->ptes[v - span_start];
                if (pte.present && !pte.prot_none) {
                    pte.prot_none = true;
                    ++ops.pte_writes;
                }
            }
        } else {
            v = chunk_end;
        }
    }
    return ops;
}

PtOps
PageTable::map_page(Vpn vpn, Pdom pdom)
{
    PtOps ops;
    Vpn idx = pmd_index(vpn);
    Leaf &leaf = leaf_grow(idx);
    if (leaf.kind != PmdKind::kTable) {
        // Re-enable the span as a PTE table before installing the page.
        // Sibling PTEs under a disabled PMD still carry their pre-eviction
        // tags; neutralize them so re-enabling one page cannot resurrect
        // the whole evicted span.
        if (leaf.kind == PmdKind::kDisabled) {
            Vpn base = idx * pmd_span_;
            for (Vpn p = base; p < base + pmd_span_; ++p) {
                Pte &pte = leaf.ptes[p - base];
                if (pte.present && p != vpn) {
                    pte.pdom = access_never_;
                    ++ops.pte_writes;
                }
            }
        }
        leaf.kind = PmdKind::kTable;
        leaf.was_huge = false;
        ++ops.pmd_writes;
    }
    Pte &pte = leaf.ptes[vpn - idx * pmd_span_];
    if (!pte.present)
        ++leaf.present;
    pte.present = true;
    pte.pdom = pdom;
    ++ops.pte_writes;
    return ops;
}

PtOps
PageTable::unmap_page(Vpn vpn)
{
    PtOps ops;
    Vpn idx = pmd_index(vpn);
    Leaf *leaf = leaf_at(idx);
    if (!leaf || leaf->kind == PmdKind::kHuge)
        return ops;
    Pte &pte = leaf->ptes[vpn - idx * pmd_span_];
    if (!pte.present)
        return ops;
    pte = Pte{};
    ++ops.pte_writes;
    if (leaf->present > 0)
        --leaf->present;
    return ops;
}

PtOps
PageTable::unmap_huge(Vpn vpn)
{
    PtOps ops;
    Vpn idx = pmd_index(vpn);
    Leaf *leaf = leaf_at(idx);
    if (!leaf)
        return ops;
    if (leaf->kind == PmdKind::kHuge ||
        (leaf->kind == PmdKind::kDisabled && leaf->was_huge)) {
        leaf_drop(idx);
        ++ops.pmd_writes;
    }
    return ops;
}

PtOps
PageTable::map_huge(Vpn vpn, Pdom pdom)
{
    PtOps ops;
    Leaf &leaf = leaf_grow(pmd_index(vpn));
    leaf.kind = PmdKind::kHuge;
    leaf.pdom = pdom;
    leaf.present = 0;
    ++ops.pmd_writes;
    // Drop any stale PTEs shadowed by the huge entry.
    std::fill(leaf.ptes.begin(), leaf.ptes.end(), Pte{});
    return ops;
}

bool
PageTable::span_uniform(const Leaf *leaf, Pdom *pdom_out) const
{
    if (!leaf || leaf->kind != PmdKind::kTable ||
        leaf->present != pmd_span_) {
        return false;
    }
    Pdom pdom = leaf->ptes[0].pdom;
    for (const Pte &pte : leaf->ptes) {
        if (!pte.present || pte.prot_none || pte.pdom != pdom)
            return false;
    }
    if (pdom_out)
        *pdom_out = pdom;
    return true;
}

PtOps
PageTable::set_pdom_range(Vpn vpn, std::uint64_t count, Pdom pdom,
                          bool allow_pmd_fast_path)
{
    PtOps ops;
    Vpn v = vpn;
    Vpn end = vpn + count;
    while (v < end) {
        Vpn idx = pmd_index(v);
        Vpn span_start = idx * pmd_span_;
        Vpn span_end = span_start + pmd_span_;
        bool covers_span = (v == span_start && end >= span_end);
        Leaf *leaf = leaf_at(idx);
        if (covers_span && leaf) {
            if (leaf->kind == PmdKind::kHuge) {
                leaf->pdom = pdom;
                ++ops.pmd_writes;
                v = span_end;
                continue;
            }
            if (leaf->kind == PmdKind::kDisabled) {
                if (leaf->was_huge) {
                    // Restore the huge mapping with the new tag: the PMD is
                    // the only entry either way.
                    leaf->kind = PmdKind::kHuge;
                    leaf->pdom = pdom;
                    leaf->was_huge = false;
                    ++ops.pmd_writes;
                    v = span_end;
                    continue;
                }
                if (allow_pmd_fast_path && leaf->pdom == pdom) {
                    // §5.5 HLRU remap: the vdom returns to the same pdom it
                    // last occupied, so the (uniform) PTE tags below the
                    // disabled PMD are still valid; one PMD write restores
                    // the whole span without touching 512 PTEs.
                    leaf->kind = PmdKind::kTable;
                    ++ops.pmd_writes;
                    v = span_end;
                    continue;
                }
                // Different pdom: re-enable the span and pay per-PTE retags.
                leaf->kind = PmdKind::kTable;
                ++ops.pmd_writes;
                for (Pte &pte : leaf->ptes) {
                    if (pte.present) {
                        pte.pdom = pdom;
                        pte.prot_none = false;
                        ++ops.pte_writes;
                    }
                }
                v = span_end;
                continue;
            }
        }
        Vpn chunk_end = std::min(end, span_end);
        if (leaf && leaf->kind == PmdKind::kTable) {
            for (; v < chunk_end; ++v) {
                Pte &pte = leaf->ptes[v - span_start];
                if (pte.present) {
                    pte.pdom = pdom;
                    pte.prot_none = false;
                    ++ops.pte_writes;
                }
            }
        } else {
            v = chunk_end;
        }
    }
    return ops;
}

PtOps
PageTable::disable_range(Vpn vpn, std::uint64_t count, Pdom access_never,
                         bool allow_pmd_fast_path)
{
    PtOps ops;
    Vpn v = vpn;
    Vpn end = vpn + count;
    while (v < end) {
        Vpn idx = pmd_index(v);
        Vpn span_start = idx * pmd_span_;
        Vpn span_end = span_start + pmd_span_;
        bool covers_span = (v == span_start && end >= span_end);
        Leaf *leaf = leaf_at(idx);
        if (covers_span && leaf) {
            if (leaf->kind == PmdKind::kHuge) {
                leaf->kind = PmdKind::kDisabled;
                leaf->was_huge = true;
                ++ops.pmd_writes;
                v = span_end;
                continue;
            }
            Pdom uniform_pdom = 0;
            if (allow_pmd_fast_path &&
                span_uniform(leaf, &uniform_pdom)) {
                leaf->kind = PmdKind::kDisabled;
                leaf->pdom = uniform_pdom;
                ++ops.pmd_writes;
                v = span_end;
                continue;
            }
        }
        Vpn chunk_end = std::min(end, span_end);
        if (leaf && leaf->kind == PmdKind::kTable) {
            for (; v < chunk_end; ++v) {
                Pte &pte = leaf->ptes[v - span_start];
                if (pte.present && pte.pdom != access_never) {
                    pte.pdom = access_never;
                    ++ops.pte_writes;
                }
            }
        } else {
            v = chunk_end;
        }
    }
    return ops;
}

std::uint64_t
PageTable::present_pages() const
{
    std::uint64_t count = 0;
    auto tally = [&](const Leaf *leaf) {
        if (!leaf)
            return;
        if (leaf->kind == PmdKind::kHuge) {
            count += pmd_span_;
            return;
        }
        for (const Pte &pte : leaf->ptes) {
            if (pte.present)
                ++count;
        }
    };
    for (const auto &leaf : dense_)
        tally(leaf.get());
    for (const auto &[idx, leaf] : sparse_) {
        (void)idx;
        tally(leaf.get());
    }
    return count;
}

}  // namespace vdom::hw
