/// \file
/// Memory access path: TLB lookup -> page-table walk -> domain check.

#pragma once

#include "hw/arch.h"
#include "hw/core.h"
#include "hw/page_table.h"
#include "hw/perm.h"

namespace vdom::hw {

/// Outcome of one simulated memory access.
enum class AccessOutcome : std::uint8_t {
    kOk,           ///< Translation present, permission granted.
    kDomainFault,  ///< Permission register denies the page's pdom
                   ///  (protection-key fault on Intel, domain fault on ARM).
    kPageFault,    ///< No translation (demand paging or disabled PMD).
};

/// Detailed access result.
struct AccessResult {
    AccessOutcome outcome = AccessOutcome::kOk;
    Pdom pdom = 0;             ///< Domain tag of the page (when translated).
    bool pmd_disabled = false; ///< Page fault came from a disabled PMD.
    bool tlb_hit = false;
};

/// Stateless access engine over a core's current (pgd, asid).
///
/// Mirrors the hardware sequence from §2: "the processor gets the domain
/// identifier of the virtual address, checks the access permission to that
/// address in the register, and raises an exception if any violation is
/// detected."  Charges TLB-hit or walk cycles on the core.
class Mmu {
  public:
    /// Performs one access to \p vpn on \p core.
    /// \param write true for a store, false for a load.
    static AccessResult access(Core &core, Vpn vpn, bool write);

    /// Translation step only (no permission check); used by kernel code
    /// paths that probe mappings.
    static AccessResult translate_only(Core &core, Vpn vpn);
};

}  // namespace vdom::hw
