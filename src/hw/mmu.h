/// \file
/// Memory access path: TLB lookup -> page-table walk -> domain check.

#pragma once

#include "hw/arch.h"
#include "hw/core.h"
#include "hw/page_table.h"
#include "hw/perm.h"

namespace vdom::hw {

/// Outcome of one simulated memory access.
enum class AccessOutcome : std::uint8_t {
    kOk,           ///< Translation present, permission granted.
    kDomainFault,  ///< Permission register denies the page's pdom
                   ///  (protection-key fault on Intel, domain fault on ARM).
    kPageFault,    ///< No translation (demand paging or disabled PMD).
};

/// Detailed access result.
struct AccessResult {
    AccessOutcome outcome = AccessOutcome::kOk;
    Pdom pdom = 0;             ///< Domain tag of the page (when translated).
    bool pmd_disabled = false; ///< Page fault came from a disabled PMD.
    bool tlb_hit = false;
};

/// Stateless access engine over a core's current (pgd, asid).
///
/// Mirrors the hardware sequence from §2: "the processor gets the domain
/// identifier of the virtual address, checks the access permission to that
/// address in the register, and raises an exception if any violation is
/// detected."  Charges TLB-hit or walk cycles on the core.
class Mmu {
  public:
    /// Performs one access to \p vpn on \p core.
    /// \param write true for a store, false for a load.
    static AccessResult access(Core &core, Vpn vpn, bool write);

    /// Translation step only (no permission check); used by kernel code
    /// paths that probe mappings.
    static AccessResult translate_only(Core &core, Vpn vpn);

  private:
    static AccessResult translate_slow(Core &core, Vpn vpn);
};

/// The whole TLB-hit path lives in the header: every simulated load/store
/// funnels through here, so the hit case (lookup + permission check +
/// cycle charge) must inline into workload loops.  Only the miss path
/// (page-table walk + TLB fill) pays an out-of-line call.
inline AccessResult
Mmu::translate_only(Core &core, Vpn vpn)
{
    auto hit = core.tlb().lookup(core.asid(), vpn);
    if (hit) {
        core.charge(CostKind::kTlbMiss, core.costs().tlb_hit);
        AccessResult res;
        res.tlb_hit = true;
        res.outcome = AccessOutcome::kOk;
        res.pdom = hit->pdom;
        return res;
    }
    return translate_slow(core, vpn);
}

inline AccessResult
Mmu::access(Core &core, Vpn vpn, bool write)
{
    AccessResult res = translate_only(core, vpn);
    if (res.outcome != AccessOutcome::kOk)
        return res;
    Perm perm = core.perm_reg().get(res.pdom);
    bool allowed = write ? perm_allows_write(perm) : perm_allows_read(perm);
    if (!allowed)
        res.outcome = AccessOutcome::kDomainFault;
    return res;
}

}  // namespace vdom::hw
