/// \file
/// Memory access path implementation.

#include "hw/mmu.h"

namespace vdom::hw {

namespace {

/// Looks up the translation for \p vpn, filling the TLB on a miss.
AccessResult
do_translate(Core &core, Vpn vpn)
{
    AccessResult res;
    const CostTable &costs = core.costs();
    auto hit = core.tlb().lookup(core.asid(), vpn);
    if (hit) {
        core.charge(CostKind::kTlbMiss, costs.tlb_hit);
        res.tlb_hit = true;
        res.outcome = AccessOutcome::kOk;
        res.pdom = hit->pdom;
        return res;
    }
    core.charge(CostKind::kTlbMiss, costs.pt_walk);
    const PageTable *pgd = core.pgd();
    if (!pgd) {
        res.outcome = AccessOutcome::kPageFault;
        return res;
    }
    Translation t = pgd->translate(vpn);
    if (!t.present) {
        res.outcome = AccessOutcome::kPageFault;
        res.pmd_disabled = t.pmd_disabled;
        return res;
    }
    core.tlb().insert(core.asid(), vpn, TlbEntry{t.pdom, t.huge});
    res.outcome = AccessOutcome::kOk;
    res.pdom = t.pdom;
    return res;
}

}  // namespace

AccessResult
Mmu::access(Core &core, Vpn vpn, bool write)
{
    AccessResult res = do_translate(core, vpn);
    if (res.outcome != AccessOutcome::kOk)
        return res;
    Perm perm = core.perm_reg().get(res.pdom);
    bool allowed = write ? perm_allows_write(perm) : perm_allows_read(perm);
    if (!allowed)
        res.outcome = AccessOutcome::kDomainFault;
    return res;
}

AccessResult
Mmu::translate_only(Core &core, Vpn vpn)
{
    return do_translate(core, vpn);
}

}  // namespace vdom::hw
