/// \file
/// Memory access path implementation: the TLB-miss (walk + fill) slow path.
/// The hit path is inline in mmu.h.

#include "hw/mmu.h"

namespace vdom::hw {

AccessResult
Mmu::translate_slow(Core &core, Vpn vpn)
{
    AccessResult res;
    core.charge(CostKind::kTlbMiss, core.costs().pt_walk);
    const PageTable *pgd = core.pgd();
    if (!pgd) {
        res.outcome = AccessOutcome::kPageFault;
        return res;
    }
    Translation t = pgd->translate(vpn);
    if (!t.present) {
        res.outcome = AccessOutcome::kPageFault;
        res.pmd_disabled = t.pmd_disabled;
        return res;
    }
    core.tlb().insert(core.asid(), vpn, TlbEntry{t.pdom, t.huge});
    res.outcome = AccessOutcome::kOk;
    res.pdom = t.pdom;
    return res;
}

}  // namespace vdom::hw
