/// \file
/// Cycle-cost categories for breakdown accounting.
///
/// Every cycle the simulator charges is tagged with a category, which is
/// what powers the paper's Figure 1 overhead breakdown and the per-bench
/// reporting in EXPERIMENTS.md.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "hw/arch.h"

namespace vdom::hw {

/// Category of a cycle charge.
enum class CostKind : std::uint8_t {
    kCompute,        ///< Application work (the useful part).
    kApi,            ///< Trusted-API entry/exit, call gates.
    kPermReg,        ///< PKRU/DACR and VDR manipulation.
    kSyscall,        ///< Kernel entry/exit.
    kTlbMiss,        ///< Page-table walks on TLB misses.
    kTlbFlush,       ///< Local TLB invalidation instructions.
    kShootdown,      ///< IPIs: posting, waiting, remote handling.
    kBusyWait,       ///< Spinning for a free domain (libmpk).
    kEviction,       ///< PTE/PMD updates + eviction bookkeeping.
    kPgdSwitch,      ///< VDS switches (pgd writes + metadata).
    kMigration,      ///< Thread migration between VDSes.
    kMemSync,        ///< Cross-VDS page-table synchronization.
    kFault,          ///< Fault entry/decode.
    kContextSwitch,  ///< Scheduler switch_mm work.
    kVmExit,         ///< VMFUNC / EPT switches (EPK).
    kVmOverhead,     ///< VM execution tax (nested paging, virtual IO).
    kIo,             ///< Device/network IO service time.
    kIdle,           ///< Waiting for work (closed-loop client starvation).
    kWal,            ///< Write-ahead-log persists + ordering barriers.
    kNumKinds,
};

constexpr std::size_t kNumCostKinds =
    static_cast<std::size_t>(CostKind::kNumKinds);

/// Returns a short label for \p kind.
constexpr const char *
cost_kind_name(CostKind kind)
{
    switch (kind) {
      case CostKind::kCompute: return "compute";
      case CostKind::kApi: return "api";
      case CostKind::kPermReg: return "perm_reg";
      case CostKind::kSyscall: return "syscall";
      case CostKind::kTlbMiss: return "tlb_miss";
      case CostKind::kTlbFlush: return "tlb_flush";
      case CostKind::kShootdown: return "tlb_shootdown";
      case CostKind::kBusyWait: return "busy_wait";
      case CostKind::kEviction: return "eviction";
      case CostKind::kPgdSwitch: return "pgd_switch";
      case CostKind::kMigration: return "migration";
      case CostKind::kMemSync: return "mem_sync";
      case CostKind::kFault: return "fault";
      case CostKind::kContextSwitch: return "context_switch";
      case CostKind::kVmExit: return "vm_exit";
      case CostKind::kVmOverhead: return "vm_overhead";
      case CostKind::kIo: return "io";
      case CostKind::kIdle: return "idle";
      case CostKind::kWal: return "wal";
      case CostKind::kNumKinds: break;
    }
    return "?";
}

/// Accumulated cycles per category.
struct CycleBreakdown {
    std::array<Cycles, kNumCostKinds> by_kind{};

    void
    add(CostKind kind, Cycles cycles)
    {
        by_kind[static_cast<std::size_t>(kind)] += cycles;
    }

    Cycles
    get(CostKind kind) const
    {
        return by_kind[static_cast<std::size_t>(kind)];
    }

    Cycles
    total() const
    {
        Cycles sum = 0;
        for (Cycles c : by_kind)
            sum += c;
        return sum;
    }

    /// Everything except useful application work and idle time.
    Cycles
    overhead() const
    {
        return total() - get(CostKind::kCompute) - get(CostKind::kIo) -
               get(CostKind::kIdle);
    }

    CycleBreakdown &
    operator+=(const CycleBreakdown &other)
    {
        for (std::size_t i = 0; i < kNumCostKinds; ++i)
            by_kind[i] += other.by_kind[i];
        return *this;
    }
};

}  // namespace vdom::hw
