/// \file
/// Per-core (hardware-thread) domain permission register: PKRU or DACR.

#pragma once

#include <array>
#include <cstdint>

#include "hw/perm.h"
#include "telemetry/metrics.h"

namespace vdom::hw {

/// Model of the per-core permission register.
///
/// Both Intel PKRU and ARM DACR pack one 2-bit access-rights field per
/// hardware domain into a 32-bit register.  The register is part of the
/// thread context: the kernel saves/restores it across context switches and
/// the VDom algorithm rewrites it when the (pdom, vdom) mapping of the
/// thread's VDS changes (Fig. 3: "permission bits P24 are moved ... in line
/// with the remapping").
class PermRegister {
  public:
    static constexpr std::size_t kSlots = 16;

    PermRegister() { reset(); }

    /// Resets to the hardware default: full access to pdom0, access
    /// disabled on every other pdom (the safe boot state VDom installs).
    void
    reset()
    {
        slots_.fill(Perm::kAccessDisable);
        slots_[0] = Perm::kFullAccess;
    }

    /// Reads the rights for \p pdom.
    Perm get(std::uint8_t pdom) const { return slots_[pdom]; }

    /// Writes the rights for \p pdom.
    void
    set(std::uint8_t pdom, Perm perm)
    {
        slots_[pdom] = perm;
        telemetry::metric_add(telemetry::Metric::kPermRegWrite, 1, owner_);
    }

    /// Returns the raw 32-bit register image (PKRU layout: 2 bits/pdom).
    std::uint32_t
    raw() const
    {
        std::uint32_t value = 0;
        for (std::size_t i = 0; i < kSlots; ++i)
            value |= static_cast<std::uint32_t>(slots_[i]) << (2 * i);
        return value;
    }

    /// Loads a raw 32-bit register image.
    void
    load_raw(std::uint32_t value)
    {
        for (std::size_t i = 0; i < kSlots; ++i)
            slots_[i] = static_cast<Perm>((value >> (2 * i)) & 0x3u);
        telemetry::metric_add(telemetry::Metric::kPermRegWrite, 1, owner_);
    }

    /// Telemetry shard for write metrics (the owning core's id).
    void set_owner(std::size_t owner) { owner_ = owner; }

    bool
    operator==(const PermRegister &other) const
    {
        return slots_ == other.slots_;
    }

  private:
    std::array<Perm, kSlots> slots_;
    std::size_t owner_ = 0;
};

}  // namespace vdom::hw
