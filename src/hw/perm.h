/// \file
/// Hardware access-permission encoding shared by PKRU/DACR models.

#pragma once

#include <cstdint>

namespace vdom::hw {

/// Hardware access rights for one domain slot (2 bits in PKRU/DACR).
///
/// Encoding follows Intel PKRU: bit 0 = access disable, bit 1 = write
/// disable.  ARM DACR semantics ("no access" / "client") are mapped onto
/// the same three states.
enum class Perm : std::uint8_t {
    kFullAccess = 0,     ///< Read and write allowed.
    kWriteDisable = 2,   ///< Read-only.
    kAccessDisable = 3,  ///< No access.
};

/// Returns true when \p perm allows a read.
constexpr bool
perm_allows_read(Perm perm)
{
    return perm != Perm::kAccessDisable;
}

/// Returns true when \p perm allows a write.
constexpr bool
perm_allows_write(Perm perm)
{
    return perm == Perm::kFullAccess;
}

/// Returns a short human-readable permission name.
constexpr const char *
perm_name(Perm perm)
{
    switch (perm) {
      case Perm::kFullAccess: return "FA";
      case Perm::kWriteDisable: return "WD";
      case Perm::kAccessDisable: return "AD";
    }
    return "??";
}

}  // namespace vdom::hw
