#!/usr/bin/env bash
# Builds the project, runs the full test suite, and regenerates every
# paper table/figure, mirroring the artifact-evaluation flow (§A.5).
#
# Usage: scripts/run_all.sh [--quick] [--csv]
#   --quick  scaled-down bench runs (seconds instead of minutes)
#   --csv    plotting-ready CSV bench output
#
# Results land in results/: test_output.txt plus one file per bench.

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=""
for arg in "$@"; do
    case "$arg" in
      --quick) QUICK="--quick" ;;
      --csv) export VDOM_BENCH_CSV=1 ;;
      *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

cmake -B build -G Ninja
cmake --build build
mkdir -p results

ctest --test-dir build --output-on-failure 2>&1 | tee results/test_output.txt

for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name=$(basename "$b")
    echo "== running $name =="
    if [ "$name" = bench_simperf ]; then
        "$b" --benchmark_min_time=0.1 2>/dev/null | tee "results/$name.txt"
    else
        "$b" $QUICK 2>/dev/null | tee "results/$name.txt"
    fi
done

echo "done: see results/"
