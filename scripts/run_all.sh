#!/usr/bin/env bash
# Builds the project, runs the full test suite, and regenerates every
# paper table/figure, mirroring the artifact-evaluation flow (§A.5).
#
# Usage: scripts/run_all.sh [--quick] [--csv]
#   --quick  scaled-down bench runs (seconds instead of minutes)
#   --csv    plotting-ready CSV bench output
#
# Results land in results/: test_output.txt, one .txt + .json file per
# bench (schema-checked machine-readable records), the aggregated
# results/BENCH_summary.json, and the Chrome-trace span export
# results/fig5_httpd.trace.json (open in chrome://tracing or
# ui.perfetto.dev).

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=""
for arg in "$@"; do
    case "$arg" in
      --quick) QUICK="--quick" ;;
      --csv) export VDOM_BENCH_CSV=1 ;;
      *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

cmake -B build -G Ninja
cmake --build build
mkdir -p results results/json

ctest --test-dir build --output-on-failure 2>&1 | tee results/test_output.txt

for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name=$(basename "$b")
    echo "== running $name =="
    json="results/json/$name.json"
    extra=""
    if [ "$name" = fig5_httpd ]; then
        extra="--trace results/fig5_httpd.trace.json"
    fi
    if [ "$name" = bench_simperf ]; then
        "$b" --benchmark_min_time=0.1 --json "$json" 2>/dev/null \
            | tee "results/$name.txt"
    else
        "$b" $QUICK --json "$json" $extra 2>/dev/null \
            | tee "results/$name.txt"
    fi
    python3 scripts/check_bench_json.py "$json"
done

# Fault-injection determinism gate: the chaos bench is fully seeded, so a
# second run with the same seed must produce byte-identical JSON -- and a
# byte-identical post-mortem bundle (violation dump if an invariant ever
# trips, forced terminal snapshot otherwise).  The rerun lands outside
# results/json so it never pollutes the aggregation.
echo "== chaos_stress determinism check =="
./build/bench/chaos_stress $QUICK --json results/chaos_stress_rerun.json \
    --postmortem results/chaos_postmortem.json > /dev/null 2>&1
./build/bench/chaos_stress $QUICK --json results/chaos_stress_rerun2.json \
    --postmortem results/chaos_postmortem_rerun.json > /dev/null 2>&1
cmp results/json/chaos_stress.json results/chaos_stress_rerun.json
cmp results/chaos_postmortem.json results/chaos_postmortem_rerun.json
rm -f results/chaos_stress_rerun.json results/chaos_stress_rerun2.json \
    results/chaos_postmortem_rerun.json
echo "chaos_stress: two seeded runs byte-identical (JSON + bundle)"

# Bundle pipeline: schema-check the post-mortem bundle, then render the
# human-readable report and a Perfetto-loadable flow trace from it.
python3 scripts/check_bench_json.py --bundle results/chaos_postmortem.json
python3 scripts/vdom_inspect.py results/chaos_postmortem.json \
    --trace results/chaos_postmortem.trace.json \
    | tee results/chaos_postmortem.txt > /dev/null
echo "chaos_stress: bundle schema ok, report + flow trace rendered"

# Fault-point sweep gate: every crossing of every scripted API op fired
# exactly once (plus sticky replays), with the snapshot-diff atomicity
# oracle proving failed ops mutated nothing.  Two seeded runs must agree
# byte-for-byte (the JSON embeds the sweep digest); the bundle path is
# only written on a violation, so its absence is the passing state.
echo "== chaos_stress fault-point sweep =="
./build/bench/chaos_stress --sweep $QUICK --json results/sweep_run1.json \
    --postmortem results/sweep_postmortem.json | tee results/sweep.txt
./build/bench/chaos_stress --sweep $QUICK --json results/sweep_run2.json \
    --postmortem results/sweep_postmortem.json > /dev/null 2>&1
cmp results/sweep_run1.json results/sweep_run2.json
rm -f results/sweep_run1.json results/sweep_run2.json
echo "chaos_stress --sweep: zero violations, two seeded runs byte-identical"

# Crash-point recovery sweep gate: power-fail at every durable ordering
# point of every scripted op on both architectures, recover from the WAL,
# and require the recovered world to land exactly on a committed-op
# boundary (snapshot + invariants + PMO content + access verdicts).  The
# JSON embeds the order-dependent sweep digest, so cmp proves the whole
# crash/recover/verify sequence is deterministic.  The bundle is only
# written on the first violation; its absence is the passing state.
echo "== chaos_stress crash-point recovery sweep =="
./build/bench/chaos_stress --crash-sweep $QUICK \
    --json results/crash_sweep_run1.json \
    --postmortem results/crash_postmortem.json | tee results/crash_sweep.txt
./build/bench/chaos_stress --crash-sweep $QUICK \
    --json results/crash_sweep_run2.json \
    --postmortem results/crash_postmortem.json > /dev/null 2>&1
cmp results/crash_sweep_run1.json results/crash_sweep_run2.json
mv results/crash_sweep_run1.json results/json/crash_sweep.json
rm -f results/crash_sweep_run2.json
python3 scripts/check_bench_json.py results/json/crash_sweep.json
echo "chaos_stress --crash-sweep: every crash point recovered, digest stable"

# Inspector hardening: corrupt/truncated bundles must die with a one-line
# diagnosis, never a traceback.
python3 scripts/test_vdom_inspect.py > /dev/null
echo "vdom_inspect: corrupt-bundle handling ok"

# PR5 perf snapshot: distill the host-time microbenchmarks into one
# repo-root document (ns/op and derived items/s per case) so the
# data-structure overhaul's effect is diffable across checkouts.
python3 - <<'EOF'
import json, pathlib

records = json.loads(
    pathlib.Path("results/json/bench_simperf.json").read_text())
cases = {}
for rec in records:
    name = rec["config"]["case"]
    ns = rec["metrics"]["cpu_time_ns_per_iter"]
    cases[name] = {
        "ns_per_op": round(ns, 3),
        "items_per_s": round(1e9 / ns, 1) if ns > 0 else None,
    }
out = pathlib.Path("BENCH_PR5.json")
out.write_text(json.dumps({"bench": "bench_simperf", "cases": cases},
                          indent=2) + "\n")
print(f"wrote {out} ({len(cases)} cases)")
EOF

# PR9 scaling snapshot: wall-clock time of the epoch-parallel engine at
# 1/2/4/8 host threads plus derived speedups.  host_cpus is recorded
# because the numbers are only meaningful relative to it -- a 1-CPU
# container cannot show speedup, only the absence of pessimization.
python3 - <<'EOF'
import json, os, pathlib

records = json.loads(
    pathlib.Path("results/json/bench_simperf.json").read_text())
arms = {}
for rec in records:
    case = rec["config"]["case"]
    if case.startswith("BM_EngineParallelScaling/"):
        arms[int(case.rsplit("/", 1)[1])] = \
            rec["metrics"]["real_time_ns_per_iter"]
if arms:
    serial = arms[1]
    out = pathlib.Path("BENCH_PR9.json")
    out.write_text(json.dumps({
        "bench": "BM_EngineParallelScaling",
        "comment": "Wall-clock of the epoch-parallel engine; simulated "
                   "results are byte-identical at every arm. Speedup is "
                   "bounded by host_cpus -- a 1-CPU host can only show "
                   "absence of pessimization.",
        "host_cpus": os.cpu_count(),
        "arms": {
            str(t): {
                "wall_ms_per_iter": round(ns / 1e6, 3),
                "speedup_vs_serial": round(serial / ns, 3),
            } for t, ns in sorted(arms.items())
        },
    }, indent=2) + "\n")
    print(f"wrote {out} ({len(arms)} host-thread arms)")
EOF

# Aggregate every bench's records into one summary document.
python3 - <<'EOF'
import json, pathlib

summary = {}
for path in sorted(pathlib.Path("results/json").glob("*.json")):
    records = json.loads(path.read_text())
    total = {}
    for rec in records:
        for kind, cycles in rec["breakdown"].items():
            total[kind] = total.get(kind, 0) + cycles
    summary[path.stem] = {
        "records": len(records),
        "breakdown_total": total,
    }
out = pathlib.Path("results/BENCH_summary.json")
out.write_text(json.dumps({"benches": summary}, indent=2) + "\n")
print(f"wrote {out} ({len(summary)} benches)")
EOF

echo "done: see results/"
