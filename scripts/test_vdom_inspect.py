#!/usr/bin/env python3
"""Checks for vdom_inspect.py's corrupt-bundle handling.

Pytest-style (plain asserts, test_* functions) but runnable directly:
`python3 scripts/test_vdom_inspect.py`.  Stdlib only.

Every malformed input must produce a nonzero exit and a ONE-LINE
diagnosis on stderr/stdout — never a Python traceback.
"""

import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "vdom_inspect.py")

GOOD_BUNDLE = {
    "bundle": "vdom_postmortem",
    "version": 1,
    "reason": "test",
    "context": {"seed": 7},
    "flight": {
        "total": 1, "dropped": 0, "omitted": 0, "last_flow": 1,
        "cores": 1, "per_core_capacity": 16,
        "records": [
            {"seq": 1, "core": 0, "ts": 10, "kind": "shootdown_issue",
             "flow": 1, "a": 1, "b": 0},
        ],
    },
    "metrics": {"vdom.allocs": 3},
}


def run_inspect(*argv):
    return subprocess.run(
        [sys.executable, SCRIPT, *argv],
        capture_output=True, text=True, timeout=60)


def inspect_file(content, mode="w"):
    with tempfile.NamedTemporaryFile(mode, suffix=".json",
                                     delete=False) as f:
        f.write(content)
        path = f.name
    try:
        return run_inspect(path)
    finally:
        os.unlink(path)


def assert_diagnosed(proc, label):
    err = proc.stdout + proc.stderr
    assert proc.returncode != 0, f"{label}: expected nonzero exit"
    assert "Traceback" not in err, f"{label}: leaked a traceback:\n{err}"
    diagnosis = proc.stderr.strip()
    assert diagnosis, f"{label}: no diagnosis printed"
    assert len(diagnosis.splitlines()) == 1, \
        f"{label}: diagnosis is not one line:\n{diagnosis}"


def test_good_bundle_renders():
    proc = inspect_file(json.dumps(GOOD_BUNDLE))
    assert proc.returncode == 0, proc.stderr
    assert "VDom post-mortem bundle" in proc.stdout
    assert "shootdown_issue" in proc.stdout


def test_missing_file():
    proc = run_inspect("/nonexistent/bundle.json")
    assert_diagnosed(proc, "missing file")


def test_directory_instead_of_file():
    proc = run_inspect(tempfile.gettempdir())
    assert_diagnosed(proc, "directory")


def test_empty_file():
    proc = inspect_file("")
    assert_diagnosed(proc, "empty file")


def test_truncated_json():
    whole = json.dumps(GOOD_BUNDLE)
    proc = inspect_file(whole[:len(whole) // 2])
    assert_diagnosed(proc, "truncated JSON")
    assert "truncated or corrupt JSON" in proc.stderr


def test_binary_garbage():
    proc = inspect_file(b"\x00\xff\xfe\x01vdom\x80\x81", mode="wb")
    assert_diagnosed(proc, "binary garbage")


def test_wrong_marker():
    proc = inspect_file(json.dumps({"bundle": "something_else"}))
    assert_diagnosed(proc, "wrong marker")
    assert "not a vdom_postmortem bundle" in proc.stderr


def test_non_object_top_level():
    proc = inspect_file(json.dumps([1, 2, 3]))
    assert_diagnosed(proc, "non-object top level")


def test_mangled_section():
    # Valid JSON and marker, but the flight section is the wrong shape —
    # a writer that died mid-bundle.
    bad = dict(GOOD_BUNDLE, flight={"records": "not-a-list"})
    proc = inspect_file(json.dumps(bad))
    assert_diagnosed(proc, "mangled flight section")
    assert "malformed bundle" in proc.stderr


def test_record_missing_fields():
    bad = json.loads(json.dumps(GOOD_BUNDLE))
    bad["flight"]["records"] = [{"kind": "orphan"}]
    proc = inspect_file(json.dumps(bad))
    assert_diagnosed(proc, "record missing fields")


def main():
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failed = 0
    for name, fn in tests:
        try:
            fn()
            print(f"ok   {name}")
        except AssertionError as e:
            failed += 1
            print(f"FAIL {name}: {e}")
    print(f"{len(tests) - failed}/{len(tests)} passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
