#!/usr/bin/env python3
"""Render a VDom post-mortem bundle into a human-readable report.

Usage: scripts/vdom_inspect.py BUNDLE [--trace OUT.trace.json] [--last N]

BUNDLE is the JSON document written by telemetry/postmortem.h (e.g. by
`chaos_stress --postmortem bundle.json` or by the chaos harness on an
invariant violation).  The report shows why the run died, the causal
flight-recorder timeline leading up to it (grouped by flow so cross-core
shootdown chains read issue -> receipt -> flush), the kernel introspect
snapshot, the hottest metrics, and which fault sites fired.

With --trace, also emits a Chrome-trace / Perfetto-loadable JSON of the
flight records: span kinds as B/E/i events, everything else as thin
slices, plus s/t/f flow events drawing issuer -> receiver arrows (open in
ui.perfetto.dev or chrome://tracing).

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys

SPAN_KINDS = {"span_begin": "B", "span_end": "E", "span_instant": "i"}


def load_bundle(path):
    """Loads and sanity-checks a bundle, exiting with a one-line
    diagnosis (never a traceback) on missing, truncated, or corrupt
    input — bundles are often pulled off dying CI runners mid-write."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"{path}: cannot read bundle: {e.strerror or e}")
    except UnicodeDecodeError:
        sys.exit(f"{path}: not a text bundle (binary or wrong encoding)")
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: truncated or corrupt JSON "
                 f"(line {e.lineno} col {e.colno}: {e.msg})")
    if not isinstance(doc, dict):
        sys.exit(f"{path}: not a bundle object "
                 f"(top level is {type(doc).__name__})")
    if doc.get("bundle") != "vdom_postmortem":
        sys.exit(f"{path}: not a vdom_postmortem bundle")
    return doc


def fmt_record(rec):
    extra = ""
    if rec.get("flow"):
        extra += f" flow={rec['flow']}"
    if rec.get("a"):
        extra += f" a={rec['a']}"
    if rec.get("b"):
        extra += f" b={rec['b']}"
    if rec.get("name"):
        extra += f" name={rec['name']}"
    tid = f" tid={rec['tid']}" if rec.get("tid") else ""
    return (f"  #{rec['seq']:<6} core{rec['core']}{tid} "
            f"@{rec['ts']:<10} {rec['kind']}{extra}")


def print_report(doc, last_n):
    print("=" * 72)
    print(f"VDom post-mortem bundle (version {doc.get('version')})")
    print(f"reason: {doc.get('reason')}")
    context = doc.get("context") or {}
    if context:
        pairs = ", ".join(f"{k}={v}" for k, v in context.items())
        print(f"context: {pairs}")
    print("=" * 72)

    flight = doc.get("flight")
    if flight:
        records = flight.get("records", [])
        shown = records[-last_n:] if last_n else records
        print(f"\n-- flight recorder: {flight['total']} record(s) seen, "
              f"{flight['dropped']} dropped, {flight['omitted']} omitted "
              f"from bundle, {flight['last_flow']} flow(s), "
              f"{flight['cores']} core ring(s) x "
              f"{flight['per_core_capacity']} --")
        for rec in shown:
            print(fmt_record(rec))

        # Causality digest: each flow's chain on one line.
        flows = {}
        for rec in records:
            if rec.get("flow"):
                flows.setdefault(rec["flow"], []).append(rec)
        chains = {f: rs for f, rs in flows.items() if len(rs) > 1}
        if chains:
            print(f"\n-- causal flows ({len(chains)} chain(s)) --")
            for flow in sorted(chains):
                rs = chains[flow]
                steps = " -> ".join(
                    f"{r['kind']}@core{r['core']}" for r in rs)
                print(f"  flow {flow}: {steps}")

    introspect = doc.get("introspect")
    if introspect:
        s = introspect.get("summary", {})
        print("\n-- introspect snapshot --")
        print(f"  vdses={s.get('vdses')} live_vdoms={s.get('live_vdoms')} "
              f"mapped_slots={s.get('mapped_slots')} "
              f"free_slots={s.get('free_slots')}")
        print(f"  resident_threads={s.get('resident_threads')} "
              f"protected_pages={s.get('protected_pages')} "
              f"vdt_leaves={s.get('vdt_leaves')}")
        report = introspect.get("report", "")
        if report:
            print("  report:")
            for line in report.rstrip("\n").split("\n"):
                print(f"    {line}")

    metrics = doc.get("metrics")
    if metrics:
        print(f"\n-- metrics ({len(metrics)} non-zero) --")
        width = max(len(k) for k in metrics)
        for name in sorted(metrics):
            print(f"  {name:<{width}}  {metrics[name]}")

    plan = doc.get("fault_plan")
    if plan:
        print(f"\n-- fault plan: {plan['total_fires']} total fire(s) --")
        for site in plan.get("sites", []):
            armed = "armed" if site.get("armed") else "unarmed"
            line = (f"  {site['site']:<20} {armed:<8} "
                    f"occurrences={site['occurrences']:<7} "
                    f"fires={site['fires']}")
            if site.get("armed") and "probability" in site:
                line += f" (p={site['probability']}"
                if site.get("every"):
                    line += f", every={site['every']}"
                if site.get("skip"):
                    line += f", skip={site['skip']}"
                line += ")"
            print(line)
    print()


def write_trace(doc, path):
    flight = doc.get("flight") or {}
    records = flight.get("records", [])
    events = []
    cores = set()
    depth = {}  # (pid, tid) -> open-span count, to drop truncated ends
    for rec in records:
        cores.add(rec["core"])
        base = {
            "pid": rec["core"],
            "tid": rec.get("tid", 0),
            "ts": rec["ts"],
            "args": {"seq": rec["seq"], "flow": rec.get("flow", 0),
                     "a": rec.get("a", 0), "b": rec.get("b", 0)},
        }
        kind = rec["kind"]
        if kind in SPAN_KINDS:
            # The bundle holds only the newest records, so a span_end whose
            # begin fell off the ring would render as an unmatched E; skip it.
            lane = (base["pid"], base["tid"])
            if kind == "span_begin":
                depth[lane] = depth.get(lane, 0) + 1
            elif kind == "span_end":
                if depth.get(lane, 0) == 0:
                    continue
                depth[lane] -= 1
            events.append({**base, "name": rec.get("name") or kind,
                           "cat": "flight", "ph": SPAN_KINDS[kind]})
        else:
            events.append({**base, "name": kind, "cat": "flight",
                           "ph": "X", "dur": 1})
    # Flow arrows: one s -> t... -> f chain per causality id.
    flows = {}
    for rec in records:
        if rec.get("flow"):
            flows.setdefault(rec["flow"], []).append(rec)
    for flow, rs in sorted(flows.items()):
        if len(rs) < 2:
            continue
        for k, rec in enumerate(rs):
            ph = "s" if k == 0 else ("f" if k == len(rs) - 1 else "t")
            ev = {"name": "causal", "cat": "flow", "ph": ph, "id": flow,
                  "pid": rec["core"], "tid": rec.get("tid", 0),
                  "ts": rec["ts"]}
            if ph == "f":
                ev["bp"] = "e"
            events.append(ev)
    for core in sorted(cores):
        events.append({"name": "process_name", "ph": "M", "pid": core,
                       "args": {"name": f"core{core}"}})
    out = {"traceEvents": events, "displayTimeUnit": "ns"}
    with open(path, "w") as f:
        json.dump(out, f, indent=1)
        f.write("\n")
    print(f"wrote {path} ({len(events)} event(s))")


def main():
    parser = argparse.ArgumentParser(
        description="Render a VDom post-mortem bundle.")
    parser.add_argument("bundle", help="bundle JSON path")
    parser.add_argument("--trace", metavar="OUT",
                        help="also write a Perfetto-loadable trace")
    parser.add_argument("--last", type=int, default=40, metavar="N",
                        help="flight records to print (0 = all; default 40)")
    args = parser.parse_args()
    doc = load_bundle(args.bundle)
    # A bundle can parse as JSON yet still be structurally mangled (a
    # writer died mid-section); surface that as a diagnosis, not a
    # traceback.
    try:
        print_report(doc, args.last)
        if args.trace:
            write_trace(doc, args.trace)
    except (KeyError, TypeError, AttributeError, ValueError) as e:
        sys.exit(f"{args.bundle}: malformed bundle section "
                 f"({type(e).__name__}: {e})")


if __name__ == "__main__":
    main()
