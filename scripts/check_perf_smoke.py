#!/usr/bin/env python3
"""Perf-smoke regression gate for the host-time microbenchmarks.

Usage: scripts/check_perf_smoke.py BENCH_JSON REFERENCE_JSON

BENCH_JSON is bench_simperf's --json report (the repo record schema:
one record per case with metrics.cpu_time_ns_per_iter).  REFERENCE_JSON
is the checked-in bench/perf_reference.json: per-case reference ns/op
plus a multiplicative threshold.  A case fails when

    measured_ns > reference_ns * threshold

i.e. the gate only catches gross regressions (default threshold 2.0) so
that CI-runner noise and slower machines do not flap the build; the
intent is to catch an accidental return to O(n)/hashed hot paths, not
5% drift.  Exits non-zero listing every failing case.
"""

import json
import os
import sys


def check_scaling(ref, records, failures):
    """Parallel-engine scaling gate (reference key "scaling").

    Compares *wall-clock* time per iteration of BM_EngineParallelScaling
    at its widest host-thread arm against the 1-thread arm.  The bound is
    host-CPU-aware: on a multi-core runner the parallel arm must not be
    slower than max_ratio * serial (it should be faster); on a 1-2 CPU
    host there is no parallelism to win, so only a looser
    no-pessimization bound (max_ratio_low_cpu) applies.
    """
    spec = ref.get("scaling")
    if spec is None:
        return
    bench = spec["bench"]
    real = {}
    for rec in records:
        case = rec.get("config", {}).get("case", "")
        ns = rec.get("metrics", {}).get("real_time_ns_per_iter")
        if case.startswith(bench + "/") and ns is not None:
            real[int(case.rsplit("/", 1)[1])] = float(ns)
    arms = sorted(real)
    if 1 not in real or len(arms) < 2:
        failures.append(f"{bench}: scaling arms missing (got {arms})")
        return
    cpus = os.cpu_count() or 1
    wide = arms[-1]
    ratio = real[wide] / real[1]
    limit = float(spec["max_ratio"] if cpus >= 4
                  else spec["max_ratio_low_cpu"])
    verdict = "ok" if ratio <= limit else "FAIL"
    print(f"{bench}: t1={real[1] / 1e6:.2f}ms t{wide}={real[wide] / 1e6:.2f}ms"
          f" ratio {ratio:.2f} (limit {limit}, host_cpus {cpus}) {verdict}")
    if ratio > limit:
        failures.append(
            f"{bench}: {wide}-thread wall time is {ratio:.2f}x serial "
            f"(limit {limit} on a {cpus}-CPU host)")


def main(argv):
    if len(argv) != 3:
        sys.exit(__doc__)
    bench_path, ref_path = argv[1], argv[2]

    with open(bench_path) as f:
        records = json.load(f)
    with open(ref_path) as f:
        ref = json.load(f)

    threshold = float(ref["threshold"])
    measured = {}
    for rec in records:
        case = rec.get("config", {}).get("case")
        ns = rec.get("metrics", {}).get("cpu_time_ns_per_iter")
        if case is not None and ns is not None:
            measured[case] = float(ns)

    failures = []
    for case, ref_ns in ref["cases"].items():
        if case not in measured:
            failures.append(f"{case}: missing from {bench_path}")
            continue
        limit = float(ref_ns) * threshold
        got = measured[case]
        verdict = "ok" if got <= limit else "FAIL"
        print(f"{case}: {got:.2f} ns/op (reference {ref_ns}, "
              f"limit {limit:.2f}) {verdict}")
        if got > limit:
            failures.append(
                f"{case}: {got:.2f} ns/op exceeds {limit:.2f} "
                f"({ref_ns} * {threshold})")

    check_scaling(ref, records, failures)

    if failures:
        sys.exit("perf-smoke regression:\n  " + "\n  ".join(failures))
    print(f"perf-smoke: {len(ref['cases'])} case(s) within "
          f"{threshold}x of reference")


if __name__ == "__main__":
    main(sys.argv)
