#!/usr/bin/env python3
"""Perf-smoke regression gate for the host-time microbenchmarks.

Usage: scripts/check_perf_smoke.py BENCH_JSON REFERENCE_JSON

BENCH_JSON is bench_simperf's --json report (the repo record schema:
one record per case with metrics.cpu_time_ns_per_iter).  REFERENCE_JSON
is the checked-in bench/perf_reference.json: per-case reference ns/op
plus a multiplicative threshold.  A case fails when

    measured_ns > reference_ns * threshold

i.e. the gate only catches gross regressions (default threshold 2.0) so
that CI-runner noise and slower machines do not flap the build; the
intent is to catch an accidental return to O(n)/hashed hot paths, not
5% drift.  Exits non-zero listing every failing case.
"""

import json
import sys


def main(argv):
    if len(argv) != 3:
        sys.exit(__doc__)
    bench_path, ref_path = argv[1], argv[2]

    with open(bench_path) as f:
        records = json.load(f)
    with open(ref_path) as f:
        ref = json.load(f)

    threshold = float(ref["threshold"])
    measured = {}
    for rec in records:
        case = rec.get("config", {}).get("case")
        ns = rec.get("metrics", {}).get("cpu_time_ns_per_iter")
        if case is not None and ns is not None:
            measured[case] = float(ns)

    failures = []
    for case, ref_ns in ref["cases"].items():
        if case not in measured:
            failures.append(f"{case}: missing from {bench_path}")
            continue
        limit = float(ref_ns) * threshold
        got = measured[case]
        verdict = "ok" if got <= limit else "FAIL"
        print(f"{case}: {got:.2f} ns/op (reference {ref_ns}, "
              f"limit {limit:.2f}) {verdict}")
        if got > limit:
            failures.append(
                f"{case}: {got:.2f} ns/op exceeds {limit:.2f} "
                f"({ref_ns} * {threshold})")

    if failures:
        sys.exit("perf-smoke regression:\n  " + "\n  ".join(failures))
    print(f"perf-smoke: {len(ref['cases'])} case(s) within "
          f"{threshold}x of reference")


if __name__ == "__main__":
    main(sys.argv)
