#!/usr/bin/env python3
"""Schema check for the --json records the benches emit.

Usage: scripts/check_bench_json.py FILE [FILE...]

Each file must hold a non-empty JSON array of records shaped as
    {bench, config{...}, metrics{...}, breakdown{...},
     percentiles{p50, p90, p99}}
where breakdown keys are the simulator's cost-kind names and the
percentiles are ordered (p50 <= p90 <= p99).  Exits non-zero, naming the
offending file/record, on the first violation.
"""

import json
import sys

# Must match CostKind / cost_kind_name() in src/hw/cost_kind.h.
COST_KINDS = {
    "compute", "api", "perm_reg", "syscall", "tlb_miss", "tlb_flush",
    "tlb_shootdown", "busy_wait", "eviction", "pgd_switch", "migration",
    "mem_sync", "fault", "context_switch", "vm_exit", "vm_overhead",
    "io", "idle",
}

REQUIRED_KEYS = ("bench", "config", "metrics", "breakdown", "percentiles")


def fail(path, i, msg):
    sys.exit(f"{path}: record {i}: {msg}")


def check_file(path):
    with open(path) as f:
        try:
            records = json.load(f)
        except json.JSONDecodeError as e:
            sys.exit(f"{path}: invalid JSON: {e}")
    if not isinstance(records, list):
        sys.exit(f"{path}: top-level value must be an array")
    if not records:
        sys.exit(f"{path}: no records")
    for i, rec in enumerate(records):
        if not isinstance(rec, dict):
            fail(path, i, "record is not an object")
        for key in REQUIRED_KEYS:
            if key not in rec:
                fail(path, i, f"missing key {key!r}")
        if not isinstance(rec["bench"], str) or not rec["bench"]:
            fail(path, i, "bench must be a non-empty string")
        for key in ("config", "metrics", "breakdown", "percentiles"):
            if not isinstance(rec[key], dict):
                fail(path, i, f"{key} must be an object")
        for name, value in rec["metrics"].items():
            if not isinstance(value, (int, float)):
                fail(path, i, f"metric {name!r} is not a number")
        bad = set(rec["breakdown"]) - COST_KINDS
        if bad:
            fail(path, i, f"unknown breakdown keys: {sorted(bad)}")
        missing = COST_KINDS - set(rec["breakdown"])
        if missing:
            fail(path, i, f"missing breakdown keys: {sorted(missing)}")
        for name, value in rec["breakdown"].items():
            if not isinstance(value, (int, float)) or value < 0:
                fail(path, i, f"breakdown {name!r} is not a number >= 0")
        pct = rec["percentiles"]
        for q in ("p50", "p90", "p99"):
            if not isinstance(pct.get(q), (int, float)):
                fail(path, i, f"percentiles.{q} is not a number")
        if not pct["p50"] <= pct["p90"] <= pct["p99"]:
            fail(path, i, f"percentiles not ordered: {pct}")
    return len(records)


def main(argv):
    if len(argv) < 2:
        sys.exit(__doc__.strip())
    total = 0
    for path in argv[1:]:
        n = check_file(path)
        print(f"{path}: {n} record(s) ok")
        total += n
    print(f"checked {len(argv) - 1} file(s), {total} record(s)")


if __name__ == "__main__":
    main(sys.argv)
