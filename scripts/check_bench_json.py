#!/usr/bin/env python3
"""Schema check for the --json records the benches emit.

Usage: scripts/check_bench_json.py FILE [FILE...]
       scripts/check_bench_json.py --bundle BUNDLE [BUNDLE...]

Each bench file must hold a non-empty JSON array of records shaped as
    {bench, config{...}, metrics{...}, breakdown{...},
     percentiles{p50, p90, p99}}
where breakdown keys are the simulator's cost-kind names and the
percentiles are ordered (p50 <= p90 <= p99).

With --bundle, each file must hold one post-mortem bundle object
(telemetry/postmortem.h):
    {bundle: "vdom_postmortem", version, reason, context{...},
     flight{...}?, introspect{...}?, metrics{...}?, fault_plan{...}?}

Exits non-zero, naming the offending file/record, on the first violation.
"""

import json
import sys

# Must match CostKind / cost_kind_name() in src/hw/cost_kind.h.
COST_KINDS = {
    "compute", "api", "perm_reg", "syscall", "tlb_miss", "tlb_flush",
    "tlb_shootdown", "busy_wait", "eviction", "pgd_switch", "migration",
    "mem_sync", "fault", "context_switch", "vm_exit", "vm_overhead",
    "io", "idle", "wal",
}

REQUIRED_KEYS = ("bench", "config", "metrics", "breakdown", "percentiles")


def fail(path, i, msg):
    sys.exit(f"{path}: record {i}: {msg}")


def check_file(path):
    with open(path) as f:
        try:
            records = json.load(f)
        except json.JSONDecodeError as e:
            sys.exit(f"{path}: invalid JSON: {e}")
    if not isinstance(records, list):
        sys.exit(f"{path}: top-level value must be an array")
    if not records:
        sys.exit(f"{path}: no records")
    for i, rec in enumerate(records):
        if not isinstance(rec, dict):
            fail(path, i, "record is not an object")
        for key in REQUIRED_KEYS:
            if key not in rec:
                fail(path, i, f"missing key {key!r}")
        if not isinstance(rec["bench"], str) or not rec["bench"]:
            fail(path, i, "bench must be a non-empty string")
        for key in ("config", "metrics", "breakdown", "percentiles"):
            if not isinstance(rec[key], dict):
                fail(path, i, f"{key} must be an object")
        for name, value in rec["metrics"].items():
            if not isinstance(value, (int, float)):
                fail(path, i, f"metric {name!r} is not a number")
        bad = set(rec["breakdown"]) - COST_KINDS
        if bad:
            fail(path, i, f"unknown breakdown keys: {sorted(bad)}")
        missing = COST_KINDS - set(rec["breakdown"])
        if missing:
            fail(path, i, f"missing breakdown keys: {sorted(missing)}")
        for name, value in rec["breakdown"].items():
            if not isinstance(value, (int, float)) or value < 0:
                fail(path, i, f"breakdown {name!r} is not a number >= 0")
        pct = rec["percentiles"]
        for q in ("p50", "p90", "p99"):
            if not isinstance(pct.get(q), (int, float)):
                fail(path, i, f"percentiles.{q} is not a number")
        if not pct["p50"] <= pct["p90"] <= pct["p99"]:
            fail(path, i, f"percentiles not ordered: {pct}")
    return len(records)


# Must match fault_site_name() in src/sim/fault.h.
FAULT_SITES = {
    "tlb_entry_drop", "pte_write_delay", "perm_reg_write_fail", "ipi_drop",
    "asid_exhaustion", "vds_alloc_fail", "vdt_alloc_fail", "vdr_exhausted",
    "gate_entry_denied",
}

FLIGHT_RECORD_INT_KEYS = ("seq", "ts", "core", "tid", "flow", "a", "b")

INTROSPECT_SUMMARY_KEYS = (
    "vdses", "live_vdoms", "mapped_slots", "free_slots", "resident_threads",
    "protected_pages", "vdt_leaves",
)


def bfail(path, msg):
    sys.exit(f"{path}: bundle: {msg}")


def check_bundle(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            sys.exit(f"{path}: invalid JSON: {e}")
    if not isinstance(doc, dict):
        bfail(path, "top-level value must be an object")
    if doc.get("bundle") != "vdom_postmortem":
        bfail(path, f"bundle key is {doc.get('bundle')!r}, "
                    "expected 'vdom_postmortem'")
    if not isinstance(doc.get("version"), int) or doc["version"] < 1:
        bfail(path, "version must be an int >= 1")
    if not isinstance(doc.get("reason"), str) or not doc["reason"]:
        bfail(path, "reason must be a non-empty string")
    if not isinstance(doc.get("context"), dict):
        bfail(path, "context must be an object")
    for key, value in doc["context"].items():
        if not isinstance(value, str):
            bfail(path, f"context.{key} must be a string")

    flight = doc.get("flight")
    if flight is not None:
        if not isinstance(flight, dict):
            bfail(path, "flight must be an object")
        for key in ("cores", "per_core_capacity", "total", "dropped",
                    "last_flow", "omitted"):
            if not isinstance(flight.get(key), int) or flight[key] < 0:
                bfail(path, f"flight.{key} must be an int >= 0")
        records = flight.get("records")
        if not isinstance(records, list):
            bfail(path, "flight.records must be an array")
        prev_seq = 0
        for i, rec in enumerate(records):
            if not isinstance(rec, dict):
                bfail(path, f"flight.records[{i}] is not an object")
            for key in FLIGHT_RECORD_INT_KEYS:
                if not isinstance(rec.get(key), int):
                    bfail(path, f"flight.records[{i}].{key} "
                                "must be an int")
            if not isinstance(rec.get("kind"), str) or not rec["kind"]:
                bfail(path, f"flight.records[{i}].kind must be a "
                            "non-empty string")
            if rec["seq"] <= prev_seq:
                bfail(path, f"flight.records[{i}].seq not increasing")
            prev_seq = rec["seq"]

    introspect = doc.get("introspect")
    if introspect is not None:
        if not isinstance(introspect, dict):
            bfail(path, "introspect must be an object")
        summary = introspect.get("summary")
        if not isinstance(summary, dict):
            bfail(path, "introspect.summary must be an object")
        for key in INTROSPECT_SUMMARY_KEYS:
            if not isinstance(summary.get(key), int):
                bfail(path, f"introspect.summary.{key} must be an int")
        if not isinstance(introspect.get("report"), str):
            bfail(path, "introspect.report must be a string")

    metrics = doc.get("metrics")
    if metrics is not None:
        if not isinstance(metrics, dict):
            bfail(path, "metrics must be an object")
        for name, value in metrics.items():
            if not isinstance(value, (int, float)):
                bfail(path, f"metric {name!r} is not a number")

    plan = doc.get("fault_plan")
    if plan is not None:
        if not isinstance(plan, dict):
            bfail(path, "fault_plan must be an object")
        if not isinstance(plan.get("total_fires"), int):
            bfail(path, "fault_plan.total_fires must be an int")
        sites = plan.get("sites")
        if not isinstance(sites, list) or not sites:
            bfail(path, "fault_plan.sites must be a non-empty array")
        seen = set()
        for i, site in enumerate(sites):
            if not isinstance(site, dict):
                bfail(path, f"fault_plan.sites[{i}] is not an object")
            name = site.get("site")
            if name not in FAULT_SITES:
                bfail(path, f"fault_plan.sites[{i}].site {name!r} unknown")
            seen.add(name)
            if not isinstance(site.get("armed"), bool):
                bfail(path, f"fault_plan.sites[{i}].armed must be a bool")
            for key in ("occurrences", "fires"):
                if not isinstance(site.get(key), int):
                    bfail(path, f"fault_plan.sites[{i}].{key} "
                                "must be an int")
        missing = FAULT_SITES - seen
        if missing:
            bfail(path, f"fault_plan missing sites: {sorted(missing)}")


def main(argv):
    if len(argv) < 2:
        sys.exit(__doc__.strip())
    if argv[1] == "--bundle":
        if len(argv) < 3:
            sys.exit(__doc__.strip())
        for path in argv[2:]:
            check_bundle(path)
            print(f"{path}: bundle ok")
        print(f"checked {len(argv) - 2} bundle(s)")
        return
    total = 0
    for path in argv[1:]:
        n = check_file(path)
        print(f"{path}: {n} record(s) ok")
        total += n
    print(f"checked {len(argv) - 1} file(s), {total} record(s)")


if __name__ == "__main__":
    main(sys.argv)
